"""Trace-driven workloads: ingest, export and transform job traces.

The paper's setting is online, but until now every workload was generated
in-process.  This module makes recorded workloads first-class: a *trace* is a
stream of job rows in one of two on-disk formats, both read **incrementally**
as validated :class:`~repro.workloads.generators.JobChunk` blocks so
million-job traces feed :func:`repro.solve`, a streaming
:class:`~repro.service.session.SchedulerSession` and ``repro serve --trace``
without materialising Python lists.

Formats
-------
* **NDJSON** — one JSON object per line, exactly the ``repro serve`` wire
  schema (:meth:`Job.to_dict` / :meth:`Job.from_dict`):
  ``{"id": 0, "release": 0.0, "sizes": [3.0, 4.0]}`` with optional
  ``weight`` and ``deadline``.  Blank lines and ``#`` comments are skipped.
* **CSV** — cluster-trace-style rows with the header
  ``id,release,weight,deadline,size_0,...,size_{m-1}``; ``weight`` and
  ``deadline`` columns are optional, an empty ``deadline`` cell means none,
  and ``inf`` marks a forbidden machine.

Both readers raise :class:`~repro.exceptions.TraceSchemaError` with the
1-based line number and the offending field on malformed rows; the exporters
(:func:`write_ndjson_trace` / :func:`write_csv_trace`) emit byte-stable text
(canonical JSON, shortest round-tripping float repr), so an export → ingest
round trip reproduces the source jobs **exactly** — the property-based suite
asserts byte-identical ``SolveOutcome`` rows.

Transforms
----------
Deterministic, composable chunk-stream transforms build scenario variants out
of recorded or generated traces: :func:`scale_load` (multiply sizes),
:func:`time_warp` (monotone re-clocking, constant factor or vectorised
function), :func:`truncate`, :func:`shard` (1-of-k partitioning by position,
id hash or weight class) and :func:`merge` (k-way release-ordered
interleaving of several traces, with a choice of tie-break).  The scenario
catalog (:mod:`repro.workloads.scenarios`) is layered on these, and
:mod:`repro.parallel` uses ``shard``/``merge`` as the splitting and
recombination primitives of parallel shard-and-merge solving:
``merge(shard(t, k, i, keep_ids=True) for i in range(k), tie_break="id")``
reproduces the original trace byte-for-byte for every partition mode.
"""

from __future__ import annotations

import csv
import math
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence, TextIO

import numpy as np

from repro.exceptions import InvalidParameterError, TraceSchemaError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.machine import Machine
from repro.utils.serialization import canonical_json
from repro.workloads.generators import DEFAULT_CHUNK_SIZE, JobChunk

__all__ = [
    "TRACE_FORMATS",
    "SHARD_MODES",
    "TraceStats",
    "parse_job_row",
    "sniff_format",
    "read_trace_jobs",
    "read_trace_chunks",
    "iter_ndjson_jobs",
    "iter_csv_jobs",
    "chunks_from_jobs",
    "chunks_to_instance",
    "trace_instance",
    "trace_stats",
    "write_ndjson_trace",
    "write_csv_trace",
    "write_trace",
    "scale_load",
    "time_warp",
    "truncate",
    "shard",
    "merge",
    "renumber",
]

#: Supported trace formats (file extension -> format name via sniffing).
TRACE_FORMATS = ("ndjson", "csv")

_NDJSON_SUFFIXES = {".ndjson", ".jsonl", ".json"}

#: Fields of the job-row schema; unknown NDJSON fields are ignored (client
#: metadata), unknown CSV columns are rejected (header typo safety).
_ROW_FIELDS = {"id", "release", "sizes", "weight", "deadline"}


# --------------------------------------------------------------------------------------
# Row-level schema
# --------------------------------------------------------------------------------------


def _field_float(value, lineno: int, field: str, allow_inf: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise TraceSchemaError(
            f"expected a number, got {type(value).__name__}", lineno=lineno, field=field
        )
    try:
        result = float(value)
    except ValueError as exc:
        raise TraceSchemaError(
            f"expected a number, got {value!r}", lineno=lineno, field=field
        ) from exc
    # NaN (and, outside size vectors, infinity) would fail open through the
    # Job invariants — `release < 0` is False for NaN — and corrupt the
    # decision stream downstream, so the schema rejects it here with the
    # field named.
    if math.isnan(result) or (math.isinf(result) and not allow_inf):
        raise TraceSchemaError(
            f"expected a finite number, got {value!r}", lineno=lineno, field=field
        )
    return result


def parse_job_row(data: Mapping, lineno: int = 0) -> Job:
    """Decode one mapping-shaped trace row into a :class:`Job`.

    The shared schema behind both trace formats and the ``repro serve``
    NDJSON reader.  Every violation — missing fields, wrong types,
    non-finite values, broken job invariants — raises
    :class:`TraceSchemaError` naming the line and, where attributable, the
    field.  Unknown fields are ignored (the ``repro serve`` wire format has
    always tolerated client-side metadata on job lines; CSV headers, where
    an unknown column is almost certainly a typo, stay strict).
    """
    if not isinstance(data, Mapping):
        raise TraceSchemaError(
            f"expected a JSON object, got {type(data).__name__}", lineno=lineno
        )
    for required in ("id", "release", "sizes"):
        if required not in data:
            raise TraceSchemaError("required field missing", lineno=lineno, field=required)
    raw_id = data["id"]
    if isinstance(raw_id, bool) or not isinstance(raw_id, int):
        try:
            raw_id = int(str(raw_id))
        except (TypeError, ValueError) as exc:
            raise TraceSchemaError(
                f"expected an integer, got {data['id']!r}", lineno=lineno, field="id"
            ) from exc
    release = _field_float(data["release"], lineno, "release")
    sizes = data["sizes"]
    if not isinstance(sizes, (list, tuple)) or not sizes:
        raise TraceSchemaError(
            "expected a non-empty array of per-machine sizes", lineno=lineno, field="sizes"
        )
    size_vec = tuple(_field_float(p, lineno, "sizes", allow_inf=True) for p in sizes)
    weight = _field_float(data.get("weight", 1.0), lineno, "weight")
    deadline = data.get("deadline")
    if deadline is not None:
        deadline = _field_float(deadline, lineno, "deadline")
    try:
        return Job(id=raw_id, release=release, sizes=size_vec, weight=weight,
                   deadline=deadline)
    except Exception as exc:  # InvalidInstanceError: invariant violations
        raise TraceSchemaError(str(exc), lineno=lineno) from exc


# --------------------------------------------------------------------------------------
# Readers
# --------------------------------------------------------------------------------------


def sniff_format(path: "str | Path") -> str:
    """Guess the trace format from a file name (``.csv`` vs ``.ndjson``/``.jsonl``)."""
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return "csv"
    if suffix in _NDJSON_SUFFIXES:
        return "ndjson"
    raise InvalidParameterError(
        f"cannot infer trace format from {str(path)!r}; pass format "
        f"{'/'.join(TRACE_FORMATS)} explicitly"
    )


def iter_ndjson_jobs(stream: TextIO) -> Iterator[tuple[int, Job]]:
    """Yield ``(lineno, Job)`` per NDJSON job line (blank/comment lines skipped)."""
    import json

    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"not valid JSON ({exc})", lineno=lineno) from exc
        yield lineno, parse_job_row(data, lineno)


def _csv_columns(header: Sequence[str]) -> tuple[list[str], int]:
    """Validate the CSV header; returns (columns, num_machines)."""
    columns = [name.strip() for name in header]
    size_indices = []
    seen: set[str] = set()
    for name in columns:
        if name in seen:
            raise TraceSchemaError("duplicate column", lineno=1, field=name)
        seen.add(name)
        if name.startswith("size_"):
            try:
                size_indices.append(int(name[len("size_"):]))
            except ValueError:
                raise TraceSchemaError(
                    "size columns must be size_0..size_{m-1}", lineno=1, field=name
                ) from None
        elif name not in ("id", "release", "weight", "deadline"):
            raise TraceSchemaError(
                f"unknown column; allowed: id, release, weight, deadline, size_0..",
                lineno=1, field=name,
            )
    for required in ("id", "release"):
        if required not in columns:
            raise TraceSchemaError("required column missing", lineno=1, field=required)
    if sorted(size_indices) != list(range(len(size_indices))) or not size_indices:
        raise TraceSchemaError(
            f"need consecutive size_0..size_{{m-1}} columns, got {sorted(size_indices)}",
            lineno=1, field="sizes",
        )
    return columns, len(size_indices)


def iter_csv_jobs(stream: TextIO) -> Iterator[tuple[int, Job]]:
    """Yield ``(lineno, Job)`` per CSV row (cluster-trace-style header)."""
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        return
    columns, num_machines = _csv_columns(header)
    index_of = {name: k for k, name in enumerate(columns)}
    size_cols = [index_of[f"size_{i}"] for i in range(num_machines)]
    for lineno, row in enumerate(reader, start=2):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue
        if len(row) != len(columns):
            raise TraceSchemaError(
                f"expected {len(columns)} cells, got {len(row)}", lineno=lineno
            )
        data: dict = {
            "id": row[index_of["id"]].strip(),
            "release": row[index_of["release"]].strip(),
            "sizes": [row[k].strip() for k in size_cols],
        }
        if "weight" in index_of and row[index_of["weight"]].strip():
            data["weight"] = row[index_of["weight"]].strip()
        if "deadline" in index_of and row[index_of["deadline"]].strip():
            data["deadline"] = row[index_of["deadline"]].strip()
        yield lineno, parse_job_row(data, lineno)


def _check_format(fmt: str) -> str:
    if fmt not in TRACE_FORMATS:
        raise InvalidParameterError(
            f"unknown trace format {fmt!r}; choose from {TRACE_FORMATS}"
        )
    return fmt


def _open_source(source: "str | Path | TextIO", fmt: "str | None"):
    """Resolve ``(stream, fmt, should_close)`` from a path or open stream."""
    if hasattr(source, "read"):
        return source, _check_format(fmt or "ndjson"), False
    path = Path(source)
    fmt = sniff_format(path) if fmt is None else _check_format(fmt)
    try:
        stream = open(path, "r", encoding="utf-8", newline="")
    except OSError as exc:
        raise InvalidParameterError(f"cannot open trace file {str(path)!r}: {exc}") from exc
    return stream, fmt, True


def read_trace_jobs(
    source: "str | Path | TextIO", fmt: "str | None" = None
) -> Iterator[tuple[int, Job]]:
    """Stream ``(lineno, Job)`` rows from a trace path or open stream.

    ``fmt`` is sniffed from the file extension when not given; open streams
    default to NDJSON.  This is the per-row surface ``repro serve`` uses.
    """
    stream, fmt, should_close = _open_source(source, fmt)
    try:
        rows = iter_csv_jobs(stream) if fmt == "csv" else iter_ndjson_jobs(stream)
        yield from rows
    finally:
        if should_close:
            stream.close()


def chunks_from_jobs(
    rows: Iterable[tuple[int, Job]], chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[JobChunk]:
    """Assemble ``(lineno, Job)`` rows into validated :class:`JobChunk` blocks.

    Enforces the trace-wide invariants the per-row schema cannot see: a
    consistent machine count, non-decreasing releases **across** chunk
    boundaries and all-or-none deadlines (a :class:`JobChunk` cannot
    represent a mixed column) — each violation reported with its line number.
    """
    if chunk_size <= 0:
        raise InvalidParameterError(f"chunk_size must be positive, got {chunk_size}")
    buffer: list[Job] = []
    start = 0
    num_machines: int | None = None
    has_deadlines: bool | None = None
    last_release = -math.inf

    def flush() -> JobChunk:
        nonlocal start
        chunk = JobChunk(
            start=start,
            releases=np.array([job.release for job in buffer], dtype=np.float64),
            sizes=np.array([job.sizes for job in buffer], dtype=np.float64),
            weights=np.array([job.weight for job in buffer], dtype=np.float64),
            deadlines=(
                np.array([job.deadline for job in buffer], dtype=np.float64)
                if has_deadlines
                else None
            ),
            ids=np.array([job.id for job in buffer], dtype=np.int64),
        )
        chunk.validate()
        start += len(buffer)
        buffer.clear()
        return chunk

    for lineno, job in rows:
        if num_machines is None:
            num_machines = len(job.sizes)
            has_deadlines = job.deadline is not None
        elif len(job.sizes) != num_machines:
            raise TraceSchemaError(
                f"size vector has {len(job.sizes)} entries, expected {num_machines} "
                "(machine count must be constant across the trace)",
                lineno=lineno, field="sizes",
            )
        if (job.deadline is not None) != has_deadlines:
            raise TraceSchemaError(
                "either every trace row carries a deadline or none does",
                lineno=lineno, field="deadline",
            )
        if job.release < last_release:
            raise TraceSchemaError(
                f"release {job.release} arrives after {last_release}; trace rows "
                "must be sorted by non-decreasing release",
                lineno=lineno, field="release",
            )
        last_release = job.release
        buffer.append(job)
        if len(buffer) >= chunk_size:
            yield flush()
    if buffer:
        yield flush()


def read_trace_chunks(
    source: "str | Path | TextIO",
    fmt: "str | None" = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[JobChunk]:
    """Stream a trace as validated :class:`JobChunk` blocks (the bulk surface).

    The chunks feed :meth:`SchedulerSession.submit_many` and
    :func:`chunks_to_instance` without ever materialising the whole trace.
    """
    return chunks_from_jobs(read_trace_jobs(source, fmt), chunk_size=chunk_size)


# --------------------------------------------------------------------------------------
# Materialisation and statistics
# --------------------------------------------------------------------------------------


def chunks_to_instance(
    chunks: Iterable[JobChunk],
    machines: "int | Sequence[Machine] | None" = None,
    alpha: float = 3.0,
    name: str = "trace",
) -> Instance:
    """Materialise a chunk stream into a (fully validated) :class:`Instance`.

    ``machines`` may be an explicit fleet, a count, or ``None`` to build a
    fleet of identical unit machines matching the trace's machine count.
    """
    jobs: list[Job] = []
    width: int | None = None
    for chunk in chunks:
        if width is None:
            width = chunk.sizes.shape[1]
        jobs.extend(chunk.jobs())
    if machines is None:
        if width is None:
            raise InvalidParameterError(
                "empty trace: pass machines= to build an instance with no jobs"
            )
        fleet: tuple[Machine, ...] = Machine.fleet(width, alpha=alpha)
    elif isinstance(machines, int):
        fleet = Machine.fleet(machines, alpha=alpha)
    else:
        fleet = tuple(machines)
    return Instance.build(fleet, jobs, name=name)


def trace_instance(
    source: "str | Path | TextIO",
    fmt: "str | None" = None,
    machines: "int | Sequence[Machine] | None" = None,
    alpha: float = 3.0,
    name: "str | None" = None,
) -> Instance:
    """Read a whole trace into an :class:`Instance` (convenience wrapper)."""
    if name is None:
        name = Path(source).name if not hasattr(source, "read") else "trace"
    return chunks_to_instance(
        read_trace_chunks(source, fmt), machines=machines, alpha=alpha, name=name
    )


@dataclass(frozen=True)
class TraceStats:
    """Streaming aggregate statistics of a trace (``repro trace inspect``)."""

    num_jobs: int
    num_machines: int
    first_release: float
    last_release: float
    total_min_work: float
    min_size: float
    max_size: float
    has_weights: bool
    has_deadlines: bool

    def as_row(self) -> dict:
        """Flat JSON-able view (canonical-JSON friendly)."""
        return {
            "num_jobs": self.num_jobs,
            "num_machines": self.num_machines,
            "first_release": self.first_release,
            "last_release": self.last_release,
            "total_min_work": self.total_min_work,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "has_weights": self.has_weights,
            "has_deadlines": self.has_deadlines,
        }


def trace_stats(chunks: Iterable[JobChunk]) -> TraceStats:
    """Aggregate a chunk stream into :class:`TraceStats` in one pass."""
    num_jobs = 0
    num_machines = 0
    first_release = math.inf
    last_release = -math.inf
    total_min_work = 0.0
    min_size = math.inf
    max_size = -math.inf
    has_weights = False
    has_deadlines = False
    for chunk in chunks:
        if not len(chunk):
            continue
        num_jobs += len(chunk)
        num_machines = chunk.sizes.shape[1]
        first_release = min(first_release, float(chunk.releases[0]))
        last_release = max(last_release, float(chunk.releases[-1]))
        finite = np.where(np.isfinite(chunk.sizes), chunk.sizes, np.inf)
        total_min_work += float(finite.min(axis=1).sum())
        finite_vals = chunk.sizes[np.isfinite(chunk.sizes)]
        if finite_vals.size:
            min_size = min(min_size, float(finite_vals.min()))
            max_size = max(max_size, float(finite_vals.max()))
        if chunk.weights is not None and bool((chunk.weights != 1.0).any()):
            has_weights = True
        if chunk.deadlines is not None:
            has_deadlines = True
    if num_jobs == 0:
        return TraceStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, False, False)
    return TraceStats(
        num_jobs=num_jobs,
        num_machines=num_machines,
        first_release=first_release,
        last_release=last_release,
        total_min_work=total_min_work,
        min_size=min_size,
        max_size=max_size,
        has_weights=has_weights,
        has_deadlines=has_deadlines,
    )


# --------------------------------------------------------------------------------------
# Writers
# --------------------------------------------------------------------------------------


def _iter_jobs(jobs: "Iterable[Job] | Instance | Iterable[JobChunk]") -> Iterator[Job]:
    for item in jobs:
        if isinstance(item, Job):
            yield item
        elif isinstance(item, JobChunk):
            yield from item.jobs()
        else:
            raise InvalidParameterError(
                f"expected Job or JobChunk rows, got {type(item).__name__}"
            )


def write_ndjson_trace(
    jobs: "Iterable[Job] | Instance | Iterable[JobChunk]", stream: TextIO
) -> int:
    """Write jobs as canonical NDJSON lines; returns the number of rows.

    Canonical JSON (sorted keys, shortest round-tripping float repr) makes
    the export byte-stable, so exporting the same jobs twice produces
    identical files and re-ingesting reproduces the jobs exactly.
    """
    count = 0
    for job in _iter_jobs(jobs):
        stream.write(canonical_json(job.to_dict()) + "\n")
        count += 1
    return count


def _csv_cell(value: float) -> str:
    return repr(float(value))


def write_csv_trace(
    jobs: "Iterable[Job] | Instance | Iterable[JobChunk]",
    stream: TextIO,
    num_machines: "int | None" = None,
) -> int:
    """Write jobs as cluster-trace-style CSV rows; returns the number of rows.

    Floats are written with ``repr`` (shortest exact round trip); ``inf``
    encodes a forbidden machine and an empty ``deadline`` cell means none.
    ``num_machines`` sizes the header for empty traces.
    """
    writer = csv.writer(stream, lineterminator="\n")
    count = 0
    for job in _iter_jobs(jobs):
        if count == 0:
            num_machines = len(job.sizes)
            writer.writerow(
                ["id", "release", "weight", "deadline"]
                + [f"size_{i}" for i in range(num_machines)]
            )
        writer.writerow(
            [
                job.id,
                _csv_cell(job.release),
                _csv_cell(job.weight),
                "" if job.deadline is None else _csv_cell(job.deadline),
            ]
            + [_csv_cell(p) for p in job.sizes]
        )
        count += 1
    if count == 0:
        writer.writerow(
            ["id", "release", "weight", "deadline"]
            + [f"size_{i}" for i in range(num_machines or 1)]
        )
    return count


def write_trace(
    jobs: "Iterable[Job] | Instance | Iterable[JobChunk]",
    target: "str | Path | TextIO",
    fmt: "str | None" = None,
) -> int:
    """Write jobs to a path or stream in the given (or sniffed) format.

    Path targets are written atomically (a same-directory temp file is
    renamed over the destination on success), so a failure mid-write never
    leaves a truncated trace behind — and ``jobs`` may lazily *read from the
    destination itself*, which is what makes in-place
    ``repro trace convert t.ndjson t.ndjson --load-scale 2`` safe.
    """
    if hasattr(target, "write"):
        fmt = _check_format(fmt or "ndjson")
        writer = write_csv_trace if fmt == "csv" else write_ndjson_trace
        return writer(jobs, target)
    path = Path(target)
    fmt = sniff_format(path) if fmt is None else _check_format(fmt)
    writer = write_csv_trace if fmt == "csv" else write_ndjson_trace
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8", newline="") as stream:
            count = writer(jobs, stream)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return count


# --------------------------------------------------------------------------------------
# Deterministic transforms (chunk stream -> chunk stream)
# --------------------------------------------------------------------------------------


def scale_load(chunks: Iterable[JobChunk], factor: float) -> Iterator[JobChunk]:
    """Multiply every processing size by ``factor`` (load scaling).

    With arrivals unchanged, system load scales linearly in ``factor`` —
    ``factor > 1`` pushes a trace into overload, ``factor < 1`` relaxes it.
    """
    if not (factor > 0) or not math.isfinite(factor):
        raise InvalidParameterError(f"load factor must be positive and finite, got {factor}")
    for chunk in chunks:
        out = replace(chunk, sizes=chunk.sizes * factor)
        out.validate()
        yield out


def time_warp(
    chunks: Iterable[JobChunk], warp: "float | Callable[[np.ndarray], np.ndarray]"
) -> Iterator[JobChunk]:
    """Re-clock a trace through a monotone map of the time axis.

    ``warp`` is either a positive constant factor (releases and deadlines
    multiply; ``< 1`` compresses arrivals, i.e. raises the arrival rate) or a
    vectorised non-decreasing function applied to release *and* deadline
    columns — the scenario catalog uses piecewise-linear warps to carve
    diurnal cycles and load ramps out of stationary traces.
    """
    if callable(warp):
        fn = warp
    else:
        factor = float(warp)
        if not (factor > 0) or not math.isfinite(factor):
            raise InvalidParameterError(
                f"time-warp factor must be positive and finite, got {factor}"
            )

        def fn(values: np.ndarray) -> np.ndarray:
            return values * factor

    for chunk in chunks:
        releases = np.asarray(fn(chunk.releases), dtype=np.float64)
        deadlines = (
            None
            if chunk.deadlines is None
            else np.asarray(fn(chunk.deadlines), dtype=np.float64)
        )
        out = replace(chunk, releases=releases, deadlines=deadlines)
        out.validate()
        yield out


def truncate(
    chunks: Iterable[JobChunk],
    max_jobs: "int | None" = None,
    max_time: "float | None" = None,
) -> Iterator[JobChunk]:
    """Stop a trace after ``max_jobs`` rows and/or releases past ``max_time``."""
    if max_jobs is not None and max_jobs < 0:
        raise InvalidParameterError(f"max_jobs must be non-negative, got {max_jobs}")
    taken = 0
    for chunk in chunks:
        stop = len(chunk)
        if max_time is not None:
            stop = min(stop, int(np.searchsorted(chunk.releases, max_time, side="right")))
        if max_jobs is not None:
            stop = min(stop, max_jobs - taken)
        if stop <= 0:
            return
        if stop == len(chunk):
            taken += stop
            yield chunk
            continue
        yield _slice_chunk(chunk, np.arange(stop), start=chunk.start)
        return


def _slice_chunk(chunk: JobChunk, rows: np.ndarray, start: int) -> JobChunk:
    out = JobChunk(
        start=start,
        releases=chunk.releases[rows],
        sizes=chunk.sizes[rows],
        weights=None if chunk.weights is None else chunk.weights[rows],
        deadlines=None if chunk.deadlines is None else chunk.deadlines[rows],
        ids=None if chunk.ids is None else chunk.ids[rows],
    )
    out.validate()
    return out


#: Partition modes :func:`shard` understands.
SHARD_MODES = ("round-robin", "hash", "tenant")


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser: uint64 keys -> well-mixed uint64.

    A pure bijective mixer (Steele et al.), so hash-sharding spreads any
    key set — sequential ids included — uniformly across shards while
    staying a pure function of the key alone.
    """
    z = values.astype(np.uint64, copy=True)
    z += np.uint64(0x9E3779B97F4A7C15)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


def shard(
    chunks: Iterable[JobChunk],
    num_shards: int,
    index: int,
    mode: str = "round-robin",
    keep_ids: bool = False,
) -> Iterator[JobChunk]:
    """Keep shard ``index`` of a ``num_shards``-way trace partition.

    Sharding splits a trace into ``num_shards`` disjoint sub-traces (one per
    ``index``, together covering every job exactly once) with the original
    interleaving preserved — the splitting primitive for replaying one
    recorded stream against several scheduler instances
    (:func:`repro.parallel.shard_solve`).  ``mode`` picks the partition:

    * ``"round-robin"`` — by global stream position mod ``num_shards``
      (the historical behaviour: every ``num_shards``-th job starting at
      ``index``).  Depends on where a job sits in the stream, so prefixing
      or truncating the trace reassigns jobs.
    * ``"hash"`` — by a splitmix64 hash of the job's effective id (explicit
      id, else global position).  A pure function of the id: stable across
      re-chunking, truncation of *other* shards, and chunk-size choices.
    * ``"tenant"`` — by a hash of the job's weight bit pattern, so jobs of
      the same weight class land on the same shard.  The scenario catalog
      encodes tenant identity in per-tenant weights (multi-tenant-mix), so
      this keeps each tenant's stream together; with more shards than
      weight classes some shards are legitimately empty.

    By default kept jobs are renumbered from 0 (ids dropped).  With
    ``keep_ids=True`` every kept job retains its effective id, which is what
    makes the partition losslessly invertible:
    ``merge(*(shard(t, k, i, mode, keep_ids=True) for i in range(k)),
    tie_break="id")`` reproduces the original trace byte-for-byte.
    """
    if num_shards <= 0:
        raise InvalidParameterError(f"num_shards must be positive, got {num_shards}")
    if not (0 <= index < num_shards):
        raise InvalidParameterError(
            f"shard index must be in [0, {num_shards}), got {index}"
        )
    if mode not in SHARD_MODES:
        raise InvalidParameterError(
            f"unknown shard mode {mode!r}; choose from {SHARD_MODES}"
        )
    position = 0
    taken = 0
    for chunk in chunks:
        ids = (
            chunk.ids
            if chunk.ids is not None
            else np.arange(position, position + len(chunk), dtype=np.int64)
        )
        if mode == "round-robin":
            keys = np.arange(position, position + len(chunk), dtype=np.uint64)
        elif mode == "hash":
            keys = _splitmix64(ids)
        else:  # tenant: the weight's bit pattern is the tenant key
            weights = (
                chunk.weights
                if chunk.weights is not None
                else np.ones(len(chunk), dtype=np.float64)
            )
            keys = _splitmix64(
                np.ascontiguousarray(weights, dtype=np.float64).view(np.uint64)
            )
        rows = np.flatnonzero(keys % np.uint64(num_shards) == np.uint64(index))
        position += len(chunk)
        if not rows.size:
            continue
        out = _slice_chunk(chunk, rows, start=taken)
        out = replace(out, ids=ids[rows] if keep_ids else None)
        taken += rows.size
        yield out


def renumber(chunks: Iterable[JobChunk]) -> Iterator[JobChunk]:
    """Renumber a chunk stream's jobs sequentially from 0 (drop explicit ids)."""
    start = 0
    for chunk in chunks:
        yield replace(chunk, start=start, ids=None)
        start += len(chunk)


@dataclass
class _MergeCursor:
    """One input stream of :func:`merge`: an iterator plus its current chunk."""

    chunks: Iterator[JobChunk]
    chunk: "JobChunk | None" = None
    offset: int = 0

    def refill(self) -> bool:
        while self.chunk is None or self.offset >= len(self.chunk):
            nxt = next(self.chunks, None)
            if nxt is None:
                return False
            self.chunk, self.offset = nxt, 0
        return True

    def head_release(self) -> float:
        return float(self.chunk.releases[self.offset])

    def head_id(self) -> int:
        chunk = self.chunk
        if chunk.ids is not None:
            return int(chunk.ids[self.offset])
        return chunk.start + self.offset

    def sort_key(self) -> tuple[float, int]:
        return (self.head_release(), self.head_id())


def merge(
    *streams: Iterable[JobChunk],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    tie_break: str = "stream",
) -> Iterator[JobChunk]:
    """K-way merge several traces by release date, renumbering ids from 0.

    The workhorse behind multi-tenant scenarios: each input keeps its
    internal order, outputs interleave by release, and rows are re-chunked
    to ``chunk_size``.  All inputs must agree on machine count and deadline
    presence; weights are harmonised (streams without weights contribute
    1.0).  ``tie_break`` picks the order among equal releases:

    * ``"stream"`` (default) — ties break toward the earlier stream, and a
      run of tied rows inside one stream is consumed as a block;
    * ``"id"`` — ties break by effective job id (explicit id, else global
      position), one row at a time.  With globally unique ids across the
      inputs this makes the interleaving a pure function of the rows, so
      merging the ``keep_ids=True`` shards of a trace reproduces it exactly
      even through release-tie runs (flash-crowd bursts release whole
      batches at one instant).
    """
    if not streams:
        raise InvalidParameterError("merge needs at least one input trace")
    if tie_break not in ("stream", "id"):
        raise InvalidParameterError(
            f"unknown tie_break {tie_break!r}; choose from ('stream', 'id')"
        )
    by_id = tie_break == "id"
    cursors = [_MergeCursor(iter(stream)) for stream in streams]
    live = [cursor for cursor in cursors if cursor.refill()]
    width: int | None = None
    has_deadlines: bool | None = None
    for cursor in live:
        w = cursor.chunk.sizes.shape[1]
        d = cursor.chunk.deadlines is not None
        if width is None:
            width, has_deadlines = w, d
        elif w != width:
            raise InvalidParameterError(
                f"cannot merge traces with different machine counts ({w} != {width})"
            )
        elif d != has_deadlines:
            raise InvalidParameterError(
                "cannot merge traces where only some jobs carry deadlines"
            )

    pending: list[JobChunk] = []
    pending_rows = 0
    emitted = 0

    def emit() -> Iterator[JobChunk]:
        nonlocal pending, pending_rows, emitted
        if not pending:
            return
        chunk = JobChunk(
            start=emitted,
            releases=np.concatenate([c.releases for c in pending]),
            sizes=np.concatenate([c.sizes for c in pending]),
            weights=np.concatenate([c.weights for c in pending]),
            deadlines=(
                np.concatenate([c.deadlines for c in pending]) if has_deadlines else None
            ),
        )
        chunk.validate()
        emitted += len(chunk)
        pending, pending_rows = [], 0
        yield chunk

    while live:
        live.sort(key=_MergeCursor.sort_key if by_id else _MergeCursor.head_release)
        cursor = live[0]
        bound = live[1].head_release() if len(live) > 1 else math.inf
        chunk, offset = cursor.chunk, cursor.offset
        # Under id tie-break, rows tied *at* the bound must interleave with
        # the other streams' tied heads one by one (side="left" stops the
        # bulk take before the tie run); under stream tie-break the whole
        # tie run of the winning stream is consumed as a block.
        stop = int(np.searchsorted(chunk.releases, bound, side="left" if by_id else "right"))
        stop = max(stop, offset + 1)  # always consume at least the head row
        rows = np.arange(offset, stop)
        piece = _slice_chunk(chunk, rows, start=0)
        weights = (
            piece.weights
            if piece.weights is not None
            else np.ones(len(piece), dtype=np.float64)
        )
        pending.append(replace(piece, weights=weights, ids=None))
        pending_rows += len(piece)
        cursor.offset = stop
        if not cursor.refill():
            live.remove(cursor)
        if pending_rows >= chunk_size:
            yield from emit()
    yield from emit()
