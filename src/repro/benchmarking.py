"""Unified benchmark harness emitting canonical-JSON ``BENCH_<slug>.json``.

The ad-hoc ``benchmarks/bench_e*.py`` scripts time experiments through
pytest-benchmark, which is great interactively but leaves CI blind: no
machine-readable artifact, no trajectory, no regression gate.  This module is
the programmatic core behind ``python -m benchmarks.harness`` and
``repro bench``:

* a registry of named benchmark cases covering the hot paths (Theorem 1
  dispatch under smooth and overload traffic, the no-rejection baselines,
  the speed-scaling engine, the chunked 100k-job generators, the solver
  facade and the raw event queue);
* a runner measuring median-of-k wall times, event throughput and the
  process peak-RSS high-water mark;
* one canonical-JSON artifact per case with the schema
  ``{bench, n_jobs, median_s, events_per_sec, fingerprint, ...}`` written
  through :mod:`repro.utils.serialization`, so artifacts are byte-stable
  for identical measurements and diffable across commits;
* a regression gate comparing ``events_per_sec`` against checked-in
  baseline artifacts (used by the CI ``bench`` job).

Wall times vary with the host; fingerprints and schedules do not.  The
fingerprint hashes the workload recipe (generator parameters, size,
algorithm), so a baseline comparison is only meaningful when fingerprints
match.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.utils.memory import peak_rss_bytes
from repro.utils.serialization import canonical_json, stable_hash

#: Artifact filename prefix; the CI job globs for it.
ARTIFACT_PREFIX = "BENCH_"

#: Default repeat counts (median-of-k) for quick and full runs.
QUICK_REPEATS = 3
FULL_REPEATS = 5


@dataclass
class BenchCase:
    """One prepared, timeable workload.

    ``run`` executes a single measured iteration and returns the number of
    processed events (simulator events, generated jobs, queue operations —
    whatever the case's throughput is counted in).
    """

    n_jobs: int
    fingerprint: str
    run: Callable[[], int]
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchSpec:
    """Registry entry: a named benchmark and how to build it."""

    slug: str
    description: str
    build: Callable[[float], BenchCase]
    #: Included in ``--quick`` (the per-PR CI subset).
    quick: bool = True


def _fingerprint(recipe: dict) -> str:
    """Content hash identifying a benchmark's workload recipe."""
    return stable_hash(recipe)


# --------------------------------------------------------------------------------------
# Benchmark cases
# --------------------------------------------------------------------------------------


def _scaled(n: int, scale: float) -> int:
    return max(50, int(n * scale))


def _bench_e1_flow_time(scale: float) -> BenchCase:
    """Theorem 1 on E1's overload-burst workload at n=10k.

    The hot path of the reproduction: every arrival evaluates ``lambda_ij``
    against the pending sets and the rejection rules fire constantly.  The
    burst regime is where queues actually build up, i.e. where the indexed
    scheduler state earns its keep.
    """
    from repro.core.flow_time import RejectionFlowTimeScheduler
    from repro.simulation.engine import FlowTimeEngine
    from repro.workloads.adversarial import overload_burst_instance

    machines = 8
    burst_jobs = _scaled(1225, scale)
    trailing = _scaled(200, scale)
    instance = overload_burst_instance(
        num_machines=machines, burst_jobs=burst_jobs, trailing_shorts=trailing
    )
    engine = FlowTimeEngine(instance)
    policy = RejectionFlowTimeScheduler(epsilon=0.5)
    recipe = {
        "workload": "overload-burst",
        "machines": machines,
        "burst_jobs": burst_jobs,
        "trailing_shorts": trailing,
        "algorithm": "rejection-flow(eps=0.5)",
    }
    return BenchCase(
        n_jobs=instance.num_jobs,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_e1_dispatch(scale: float, dispatch: str) -> BenchCase:
    """The E1 overload-burst workload pinned to one dispatch backend.

    Same workload as ``e1_flow_time`` (which runs the default mode) with an
    explicit ``dispatch`` in the recipe, so the trajectory records all three
    backends side by side and the gate guards each one's own baseline.
    """
    from repro.core.flow_time import RejectionFlowTimeScheduler
    from repro.simulation.engine import FlowTimeEngine
    from repro.workloads.adversarial import overload_burst_instance

    machines = 8
    burst_jobs = _scaled(1225, scale)
    trailing = _scaled(200, scale)
    instance = overload_burst_instance(
        num_machines=machines, burst_jobs=burst_jobs, trailing_shorts=trailing
    )
    engine = FlowTimeEngine(instance, dispatch=dispatch)
    policy = RejectionFlowTimeScheduler(epsilon=0.5)
    recipe = {
        "workload": "overload-burst",
        "machines": machines,
        "burst_jobs": burst_jobs,
        "trailing_shorts": trailing,
        "algorithm": "rejection-flow(eps=0.5)",
        "dispatch": dispatch,
    }
    return BenchCase(
        n_jobs=instance.num_jobs,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_e1_scan(scale: float) -> BenchCase:
    return _bench_e1_dispatch(scale, "scan")


def _bench_e1_vectorized(scale: float) -> BenchCase:
    return _bench_e1_dispatch(scale, "vectorized")


def _bench_e1_poisson(scale: float) -> BenchCase:
    """Theorem 1 on the smooth E1 workload (poisson arrivals, pareto sizes)."""
    from repro.core.flow_time import RejectionFlowTimeScheduler
    from repro.simulation.engine import FlowTimeEngine
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(10_000, scale)
    generator = InstanceGenerator(num_machines=8, seed=1, size_distribution="pareto")
    instance = generator.generate(n)
    engine = FlowTimeEngine(instance)
    policy = RejectionFlowTimeScheduler(epsilon=0.5)
    recipe = {"workload": "poisson-pareto", "machines": 8, "seed": 1, "n": n,
              "algorithm": "rejection-flow(eps=0.5)"}
    return BenchCase(
        n_jobs=n,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_greedy_overload(scale: float) -> BenchCase:
    """Rejection-free greedy under sustained overload (load 1.2).

    Without rejections the queues grow linearly, which made the scan-based
    select-next quadratic; the indexed pending heaps keep it n log n.
    """
    from repro.baselines.greedy import GreedyDispatchScheduler
    from repro.simulation.engine import FlowTimeEngine
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(10_000, scale)
    generator = InstanceGenerator(
        num_machines=8, seed=5, size_distribution="exponential", load=1.2
    )
    instance = generator.generate_large(n)
    engine = FlowTimeEngine(instance)
    policy = GreedyDispatchScheduler("spt")
    recipe = {"workload": "poisson-exponential-overload", "machines": 8, "seed": 5,
              "n": n, "load": 1.2, "algorithm": "greedy-spt"}
    return BenchCase(
        n_jobs=n,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_energy_flow(scale: float) -> BenchCase:
    """Theorem 2 (weighted flow time plus energy) on the speed-scaling engine."""
    from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
    from repro.simulation.speed_engine import SpeedScalingEngine
    from repro.workloads.generators import WeightedInstanceGenerator

    n = _scaled(4_000, scale)
    generator = WeightedInstanceGenerator(num_machines=4, seed=9, alpha=2.5)
    instance = generator.generate_large(n)
    engine = SpeedScalingEngine(instance)
    policy = RejectionEnergyFlowScheduler(epsilon=0.5)
    recipe = {"workload": "weighted-pareto", "machines": 4, "seed": 9, "n": n,
              "alpha": 2.5, "algorithm": "rejection-flow+energy(eps=0.5)"}
    return BenchCase(
        n_jobs=n,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_generator_100k(scale: float) -> BenchCase:
    """Chunked numpy-backed generation of a 100k-job instance."""
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(100_000, scale)
    generator = InstanceGenerator(num_machines=8, seed=2018, size_distribution="pareto")

    def run() -> int:
        instance = generator.generate_large(n)
        return instance.num_jobs

    recipe = {"component": "generate_large", "machines": 8, "seed": 2018, "n": n}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


def _bench_event_queue(scale: float) -> BenchCase:
    """Raw event-queue throughput: interleaved pushes and ordered pops."""
    from repro.simulation.events import EventQueue

    n = _scaled(200_000, scale)

    def run() -> int:
        queue = EventQueue()
        for k in range(n):
            queue.push_arrival(float(k % 977), job_id=k)
        count = 0
        while queue:
            queue.pop()
            count += 1
        return 2 * count

    recipe = {"component": "event-queue", "n": n}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


def _bench_solver_facade(scale: float) -> BenchCase:
    """``repro.solve()`` end to end (registry dispatch + engine + metrics)."""
    from repro.solvers import solve
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(2_000, scale)
    instance = InstanceGenerator(num_machines=4, seed=11, size_distribution="uniform").generate(n)

    def run() -> int:
        outcome = solve(instance, "rejection-flow", epsilon=0.5)
        return outcome.result.extras["events"]

    recipe = {"component": "solve-facade", "machines": 4, "seed": 11, "n": n,
              "algorithm": "rejection-flow(eps=0.5)"}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


def _bench_frontier_100k(scale: float) -> BenchCase:
    """FCFS across a 100k-job instance — the full-scale engine sweep (slow)."""
    from repro.baselines.fcfs import FCFSScheduler
    from repro.simulation.engine import FlowTimeEngine
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(100_000, scale)
    generator = InstanceGenerator(
        num_machines=8, seed=2018, size_distribution="pareto", load=0.9
    )
    instance = generator.generate_large(n)
    engine = FlowTimeEngine(instance)
    policy = FCFSScheduler()
    recipe = {"workload": "poisson-pareto", "machines": 8, "seed": 2018, "n": n,
              "load": 0.9, "algorithm": "fcfs"}
    return BenchCase(
        n_jobs=n,
        fingerprint=_fingerprint(recipe),
        run=lambda: engine.run(policy).extras["events"],
        meta=recipe,
    )


def _bench_session_ingest(scale: float) -> BenchCase:
    """Streaming-session ingestion of a 10k-job workload (Theorem 1).

    The same workload the batch ``solver_facade``/``e1_poisson`` paths run,
    fed job-by-job through ``open_session`` with a poll per submission —
    the `repro serve` hot path.  The target is <10% overhead over batch
    (asserted by ``benchmarks/bench_e13_session.py``); this case tracks the
    session path's own events/s trajectory.
    """
    from repro.service import open_session
    from repro.workloads.generators import InstanceGenerator

    n = _scaled(10_000, scale)
    generator = InstanceGenerator(num_machines=8, seed=1, size_distribution="pareto")
    instance = generator.generate(n)

    def run() -> int:
        # retain_events=False matches how `repro serve` opens its session,
        # so the gate tracks the configuration that actually serves.
        session = open_session(
            "rejection-flow", instance.machines, epsilon=0.5, retain_events=False
        )
        for job in instance.jobs:
            session.submit(job)
            session.poll()
        outcome = session.finalize()
        return outcome.result.extras["events"]

    recipe = {"workload": "poisson-pareto", "machines": 8, "seed": 1, "n": n,
              "algorithm": "rejection-flow(eps=0.5)", "path": "session-ingest",
              "retain_events": False}
    return BenchCase(
        n_jobs=n,
        fingerprint=_fingerprint(recipe),
        run=run,
        meta=recipe,
    )


def _bench_e14_robustness(scale: float) -> BenchCase:
    """Trace-driven scenario ingestion: a multi-tenant trace through a session.

    The E14 hot path — scenario chunks bulk-submitted to a streaming session
    (``submit_many`` per chunk, finalize once).  Chunk generation happens
    outside the timed run, so the gate tracks the ingestion + scheduling
    path the robustness sweep and ``repro serve --trace`` exercise.
    """
    from repro.service import open_session
    from repro.workloads.scenarios import get_scenario

    machines = 8
    n = _scaled(8_000, scale)
    scenario = get_scenario("multi-tenant-mix")
    chunks = list(scenario.job_chunks(n, num_machines=machines, seed=2018))

    def run() -> int:
        session = open_session(
            "rejection-flow", machines, epsilon=0.5, retain_events=False
        )
        for chunk in chunks:
            session.submit_many(chunk)
        outcome = session.finalize()
        return outcome.result.extras["events"]

    recipe = {"workload": "scenario:multi-tenant-mix", "machines": machines,
              "seed": 2018, "n": n, "algorithm": "rejection-flow(eps=0.5)",
              "path": "session-chunk-ingest"}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


def _bench_e16_partition(scale: float) -> BenchCase:
    """Shard-and-merge parallel solving: 4 shards × 4 workers, merged in-process.

    The multi-tenant scenario stream hash-partitioned across 4 independent
    sessions on disjoint machine groups, fanned out over 4 worker processes
    and merged — the :func:`repro.parallel.shard_solve` hot path (E16 and
    ``repro shard-solve``).  Throughput counts merged simulator events, so
    the pool spawn/teardown and the k-way merge are part of the measured
    cost, exactly as a user pays them.
    """
    from repro.parallel import shard_solve
    from repro.workloads.scenarios import get_scenario

    machines = 8
    num_shards = 4
    workers = 4
    n = _scaled(8_000, scale)
    scenario = get_scenario("multi-tenant-mix")
    chunks = list(scenario.job_chunks(n, num_machines=machines, seed=2018))

    def run() -> int:
        result = shard_solve(
            chunks,
            "rejection-flow",
            num_shards,
            partition="hash",
            workers=workers,
            machines=machines,
            epsilon=0.5,
        )
        return int(result.payload["engine_events"])

    recipe = {"workload": "scenario:multi-tenant-mix", "machines": machines,
              "seed": 2018, "n": n, "algorithm": "rejection-flow(eps=0.5)",
              "path": "shard-solve", "num_shards": num_shards,
              "partition": "hash", "workers": workers}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


def _bench_e15_service(scale: float) -> BenchCase:
    """The multi-session service end to end: 8 concurrent loadgen streams.

    Each measured iteration boots a loopback asyncio server on its own
    thread, drives 8 concurrent sessions (one thread + TCP connection each)
    through chunked submit/poll round trips, and drains it — the E15 hot
    path and the ``repro serve --listen`` serving stack.  Throughput is
    counted in decision events received over the wire.
    """
    from repro.service.client import run_loadgen
    from repro.service.server import start_server_thread

    sessions = 8
    n = _scaled(400, scale)
    chunk_size = 32

    def run() -> int:
        with start_server_thread() as handle:
            report = run_loadgen(
                handle.host,
                handle.port,
                sessions=sessions,
                jobs=n,
                machines=4,
                seed=2018,
                params={"epsilon": 0.5},
                chunk_size=chunk_size,
            )
        return report.total_decisions

    recipe = {"component": "service-loadgen", "sessions": sessions, "n": n,
              "machines": 4, "seed": 2018, "chunk_size": chunk_size,
              "algorithm": "rejection-flow(eps=0.5)", "scenarios": "catalog"}
    return BenchCase(
        n_jobs=sessions * n, fingerprint=_fingerprint(recipe), run=run, meta=recipe
    )


def _bench_e17_adaptive(scale: float) -> BenchCase:
    """The adaptive meta-scheduler on a drifting trace through a session.

    The E17 hot path — a ramp-into-heavy-tail scenario stream bulk-submitted
    to a ``meta`` session, so every arrival pays the telemetry monitor, the
    threshold controller and (on regime changes) a sub-policy rebuild on top
    of the plain E14-style ingestion cost.  Throughput counts simulator
    events, making the meta overhead directly comparable against the
    ``e14_robustness`` baseline.
    """
    from repro.service import open_session
    from repro.workloads.scenarios import get_scenario

    machines = 8
    n = _scaled(8_000, scale)
    scenario = get_scenario("drift-ramp-heavytail")
    chunks = list(scenario.job_chunks(n, num_machines=machines, seed=2018))

    def run() -> int:
        session = open_session(
            "meta", machines, policy="threshold", epsilon=0.25,
            retain_events=False,
        )
        for chunk in chunks:
            session.submit_many(chunk)
        outcome = session.finalize()
        return outcome.result.extras["events"]

    recipe = {"workload": "scenario:drift-ramp-heavytail", "machines": machines,
              "seed": 2018, "n": n, "algorithm": "meta(threshold,eps=0.25)",
              "path": "session-chunk-ingest"}
    return BenchCase(n_jobs=n, fingerprint=_fingerprint(recipe), run=run, meta=recipe)


#: The benchmark registry, in reporting order.
SPECS: dict[str, BenchSpec] = {
    spec.slug: spec
    for spec in (
        BenchSpec("e1_flow_time", "Theorem 1 on the E1 overload-burst workload (n=10k)",
                  _bench_e1_flow_time),
        BenchSpec("e1_scan", "E1 overload-burst pinned to the scan dispatch backend",
                  _bench_e1_scan),
        BenchSpec("e1_vectorized", "E1 overload-burst pinned to the vectorized SoA backend",
                  _bench_e1_vectorized),
        BenchSpec("e1_poisson", "Theorem 1 on the smooth E1 poisson-pareto workload (n=10k)",
                  _bench_e1_poisson),
        BenchSpec("greedy_overload", "greedy baseline under sustained overload (n=10k)",
                  _bench_greedy_overload),
        BenchSpec("energy_flow", "Theorem 2 on the speed-scaling engine (n=4k)",
                  _bench_energy_flow),
        BenchSpec("generator_100k", "chunked generation of a 100k-job instance",
                  _bench_generator_100k),
        BenchSpec("event_queue", "raw event-queue push/pop throughput",
                  _bench_event_queue),
        BenchSpec("solver_facade", "repro.solve() end to end (n=2k)",
                  _bench_solver_facade),
        BenchSpec("e13_session", "streaming-session ingestion, poll per submit (n=10k)",
                  _bench_session_ingest),
        BenchSpec("e14_robustness", "multi-tenant scenario trace through a session (n=8k)",
                  _bench_e14_robustness),
        BenchSpec("e15_service", "loopback service: 8 concurrent loadgen sessions (n=8x400)",
                  _bench_e15_service),
        BenchSpec("e16_partition", "shard-solve: 4 shards x 4 workers, merged (n=8k)",
                  _bench_e16_partition),
        BenchSpec("e17_adaptive", "meta-scheduler on a drifting trace through a session (n=8k)",
                  _bench_e17_adaptive),
        BenchSpec("frontier_100k", "FCFS over a 100k-job instance (full runs only)",
                  _bench_frontier_100k, quick=False),
    )
}


# --------------------------------------------------------------------------------------
# Runner
# --------------------------------------------------------------------------------------


def run_bench(spec: BenchSpec, repeats: int, scale: float = 1.0) -> dict:
    """Measure one benchmark: median-of-``repeats`` wall time plus throughput."""
    case = spec.build(scale)
    wall_times: list[float] = []
    events = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        events = case.run()
        wall_times.append(time.perf_counter() - start)
    median_s = statistics.median(wall_times)
    return {
        "bench": spec.slug,
        "description": spec.description,
        "n_jobs": case.n_jobs,
        "repeats": len(wall_times),
        "wall_times_s": wall_times,
        "median_s": median_s,
        "events": events,
        "events_per_sec": events / median_s if median_s > 0 else float("inf"),
        "fingerprint": case.fingerprint,
        "peak_rss_bytes": peak_rss_bytes(),
        "meta": case.meta,
    }


def artifact_path(out_dir: "str | Path", slug: str) -> Path:
    """Where the artifact for ``slug`` is written."""
    return Path(out_dir) / f"{ARTIFACT_PREFIX}{slug}.json"


def write_artifact(out_dir: "str | Path", result: dict) -> Path:
    """Write one ``BENCH_<slug>.json`` artifact (canonical JSON)."""
    path = artifact_path(out_dir, result["bench"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(result, indent=2) + "\n", encoding="utf-8")
    return path


def run_benchmarks(
    out_dir: "str | Path",
    only: Sequence[str] | None = None,
    quick: bool = False,
    repeats: int | None = None,
    scale: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[dict]:
    """Run the selected benchmarks and write one artifact per case."""
    if only:
        unknown = sorted(set(only) - set(SPECS))
        if unknown:
            raise KeyError(f"unknown benchmarks {unknown}; available: {sorted(SPECS)}")
        selected = [SPECS[slug] for slug in only]
    else:
        selected = [spec for spec in SPECS.values() if spec.quick or not quick]
    if repeats is None:
        repeats = QUICK_REPEATS if quick else FULL_REPEATS
    results = []
    for spec in selected:
        result = run_bench(spec, repeats=repeats, scale=scale)
        path = write_artifact(out_dir, result)
        if progress is not None:
            progress(
                f"{spec.slug:>16s}: {result['median_s']:8.3f}s median, "
                f"{result['events_per_sec']:>12,.0f} events/s -> {path}"
            )
        results.append(result)
    return results


# --------------------------------------------------------------------------------------
# Regression gate
# --------------------------------------------------------------------------------------


def compare_to_baseline(
    results: Sequence[dict],
    baseline_dir: "str | Path",
    max_regression: float = 0.25,
) -> list[str]:
    """Compare ``events_per_sec`` against checked-in baseline artifacts.

    Returns a list of human-readable failure strings; empty means the gate
    passes.  Only benchmarks with a baseline artifact are checked, and a
    fingerprint mismatch is itself a failure (the workload changed, so the
    baseline must be re-recorded deliberately).
    """
    failures: list[str] = []
    for result in results:
        path = artifact_path(baseline_dir, result["bench"])
        if not path.is_file():
            continue
        baseline = json.loads(path.read_text(encoding="utf-8"))
        if baseline.get("fingerprint") != result["fingerprint"]:
            failures.append(
                f"{result['bench']}: workload fingerprint changed "
                f"({baseline.get('fingerprint')} -> {result['fingerprint']}); "
                "re-record the baseline if the change is intentional"
            )
            continue
        floor = baseline["events_per_sec"] * (1.0 - max_regression)
        if result["events_per_sec"] < floor:
            failures.append(
                f"{result['bench']}: {result['events_per_sec']:,.0f} events/s is below "
                f"{floor:,.0f} (baseline {baseline['events_per_sec']:,.0f} "
                f"- {max_regression:.0%} tolerance)"
            )
    return failures


# --------------------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------------------


def build_parser(prog: str = "benchmarks.harness") -> argparse.ArgumentParser:
    """The harness CLI (shared by ``python -m benchmarks.harness`` and ``repro bench``)."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="run the benchmark suite and emit BENCH_<slug>.json artifacts",
    )
    parser.add_argument("--out", default="bench-artifacts",
                        help="directory for BENCH_*.json artifacts (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="run the per-PR subset with fewer repeats")
    parser.add_argument("--only", nargs="+", metavar="SLUG",
                        help="run only the named benchmarks")
    parser.add_argument("--repeats", type=int, default=None,
                        help="median-of-k repeats (default: 3 quick / 5 full)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor for workload sizes (testing hook)")
    parser.add_argument("--baseline", default=None, metavar="DIR",
                        help="compare events/sec against baseline artifacts in DIR")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="tolerated fractional events/sec drop vs baseline "
                             "(default: %(default)s)")
    parser.add_argument("--list", action="store_true", help="list benchmarks and exit")
    return parser


def main(
    argv: Sequence[str] | None = None,
    prog: str = "benchmarks.harness",
    out=None,
    err=None,
) -> int:
    """CLI entry point; returns the process exit code.

    ``out``/``err`` default to the process streams; ``repro bench`` threads
    its own streams through so callers capturing CLI output see ours too.
    """
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    args = build_parser(prog).parse_args(argv)
    if args.list:
        for spec in SPECS.values():
            marker = "quick" if spec.quick else "full-only"
            print(f"{spec.slug:>16s}  [{marker:9s}] {spec.description}", file=out)
        return 0
    try:
        results = run_benchmarks(
            args.out,
            only=args.only,
            quick=args.quick,
            repeats=args.repeats,
            scale=args.scale,
            progress=lambda line: print(line, file=out),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=err)
        return 2
    if args.baseline is not None:
        failures = compare_to_baseline(results, args.baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=out)
            return 1
        print(f"regression gate passed ({len(results)} benchmarks vs {args.baseline})", file=out)
    return 0
