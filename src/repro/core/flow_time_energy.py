"""Theorem 2 algorithm: weighted flow-time plus energy with rejections.

Section 3 of the paper considers the speed-scaling model: running machine
``i`` at speed ``s`` costs power ``P(s) = s**alpha``, and the objective is the
total *weighted* flow time plus the total energy.  The algorithm:

* **Ordering.**  Pending jobs of a machine are ordered by non-increasing
  density ``delta_ij = w_j / p_ij`` (ties by release time).

* **Local scheduling and speed.**  When machine ``i`` becomes idle it starts
  the highest-density pending job at speed
  ``gamma * (sum of the weights of the pending jobs)**(1/alpha)``; the speed
  stays constant for the whole (non-preemptive) execution.

* **Rejection.**  A counter ``v_k`` is attached to the running job ``k``;
  every job dispatched to the machine during ``k``'s execution adds its
  *weight* to ``v_k``.  The first time ``v_k > w_k / epsilon`` the running job
  is interrupted and rejected.  The total rejected weight is therefore at most
  an ``epsilon`` fraction of the total weight.

* **Dispatching.**  A new job ``j`` is sent to the machine minimising

  .. math::

      \\lambda_{ij} = w_j\\Big(\\frac{p_{ij}}{\\epsilon}
            + \\sum_{\\ell \\preceq j} \\frac{p_{i\\ell}}{\\gamma W_\\ell^{1/\\alpha}}\\Big)
            + \\Big(\\sum_{\\ell \\succ j} w_\\ell\\Big)
              \\frac{p_{ij}}{\\gamma W_j^{1/\\alpha}}

  where ``W_\\ell`` is the total weight of the pending jobs that do not
  precede ``\\ell`` (the jobs that will still be pending when ``\\ell``
  starts, i.e. the suffix of the density order including ``\\ell`` itself),
  matching the speeds the scheduling policy will actually use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import energy_flow_gamma
from repro.core.ordering import density_key
from repro.core.rejection import RejectionLog, WeightedRunningJobCounter, check_epsilon
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.decisions import ArrivalDecision, Rejection, StartDecision
from repro.simulation.speed_engine import SpeedScalingPolicy
from repro.simulation.state import EngineState


@dataclass(frozen=True, slots=True)
class WeightedRejectionEvent:
    """A weighted-rule rejection and the data the dual accounting needs."""

    machine: int
    time: float
    job_id: int
    remaining_time: float


@dataclass
class _TrackedWeightedCounter:
    """A weighted rejection counter together with the job it belongs to."""

    job_id: int
    counter: WeightedRunningJobCounter


class RejectionEnergyFlowScheduler(SpeedScalingPolicy):
    """The Section 3 online algorithm (Theorem 2).

    Parameters
    ----------
    epsilon:
        Rejection parameter; the algorithm rejects at most an ``epsilon``
        fraction of the total job weight.
    gamma:
        Speed-scaling constant.  ``None`` uses the value chosen in the
        paper's proof (see :func:`repro.core.bounds.energy_flow_gamma`).
    enable_rejection:
        Ablation switch; with ``False`` the algorithm never rejects (used to
        demonstrate why the rejection rule is needed).
    """

    def __init__(
        self,
        epsilon: float,
        gamma: float | None = None,
        enable_rejection: bool = True,
    ) -> None:
        self.epsilon = check_epsilon(epsilon)
        self._gamma_override = gamma
        self.enable_rejection = enable_rejection
        self.name = f"rejection-flow+energy(eps={epsilon:g})"
        self.reset_state()

    # -- lifecycle -----------------------------------------------------------------

    def reset_state(self) -> None:
        """Clear all per-run bookkeeping."""
        self._instance: Instance | None = None
        self.alpha: float = 3.0
        self.gamma: float = 1.0
        self._counters: dict[int, _TrackedWeightedCounter] = {}
        self.lambdas: dict[int, float] = {}
        self.lambda_choices: dict[int, tuple[int, float]] = {}
        self.rejection_events: list[WeightedRejectionEvent] = []
        self.log = RejectionLog()

    def reset(self, instance: Instance) -> None:
        """Engine hook: prepare for a fresh simulation of ``instance``."""
        alphas = {m.alpha for m in instance.machines}
        if len(alphas) != 1:
            raise InvalidParameterError(
                "the Theorem 2 algorithm assumes a common power exponent alpha; "
                f"got {sorted(alphas)}"
            )
        self.reset_state()
        self._instance = instance
        self.alpha = float(next(iter(alphas)))
        if self.alpha <= 1:
            raise InvalidParameterError(
                f"the speed-scaling model requires alpha > 1, got {self.alpha}"
            )
        self.gamma = (
            self._gamma_override
            if self._gamma_override is not None
            else energy_flow_gamma(self.epsilon, self.alpha)
        )
        if not (self.gamma > 0):
            raise InvalidParameterError(f"gamma must be positive, got {self.gamma}")

    # -- dispatching ---------------------------------------------------------------

    def lambda_ij(self, job: Job, machine: int, state: EngineState) -> float:
        """The marginal-increase surrogate ``lambda_ij`` of Section 3."""
        p_ij = job.size_on(machine)
        pending = state.pending_jobs(machine)
        merged = sorted(pending + [job], key=lambda other: density_key(other, machine))

        # Suffix weights: W_l = total weight of l and every job after it in
        # the density order (the jobs that will still be pending when l starts).
        suffix = [0.0] * (len(merged) + 1)
        for idx in range(len(merged) - 1, -1, -1):
            suffix[idx] = suffix[idx + 1] + merged[idx].weight

        waiting = 0.0
        succeeding_weight = 0.0
        w_j_suffix = None
        job_key = density_key(job, machine)
        for idx, other in enumerate(merged):
            if other.id == job.id:
                w_j_suffix = suffix[idx]
                waiting += other.size_on(machine) / (self.gamma * suffix[idx] ** (1.0 / self.alpha))
                continue
            if density_key(other, machine) <= job_key:
                waiting += other.size_on(machine) / (self.gamma * suffix[idx] ** (1.0 / self.alpha))
            else:
                succeeding_weight += other.weight
        assert w_j_suffix is not None
        own_duration = p_ij / (self.gamma * w_j_suffix ** (1.0 / self.alpha))
        return job.weight * (p_ij / self.epsilon + waiting) + succeeding_weight * own_duration

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch ``job`` to the machine minimising ``lambda_ij``; apply the weighted rule."""
        best_machine: int | None = None
        best_lambda = float("inf")
        for machine in job.eligible_machines():
            lam = self.lambda_ij(job, machine, state)
            if lam < best_lambda:
                best_machine, best_lambda = machine, lam
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")

        self.lambdas[job.id] = (self.epsilon / (1.0 + self.epsilon)) * best_lambda
        self.lambda_choices[job.id] = (best_machine, best_lambda)

        rejections: list[Rejection] = []
        running = state.running(best_machine)
        if self.enable_rejection and running is not None:
            tracked = self._counters.get(best_machine)
            if tracked is not None and tracked.job_id == running.job.id:
                if tracked.counter.record_dispatch(job.weight):
                    rejections.append(Rejection(running.job.id, reason="weighted-rule"))
                    self.rejection_events.append(
                        WeightedRejectionEvent(
                            machine=best_machine,
                            time=t,
                            job_id=running.job.id,
                            remaining_time=running.remaining_time(t),
                        )
                    )
                    self.log.weighted.append(running.job.id)
                    del self._counters[best_machine]

        return ArrivalDecision.dispatch(best_machine, rejections)

    # -- local scheduling ----------------------------------------------------------

    def priority_key(self, job: Job, machine: int) -> tuple[float, float, int]:
        """Static highest-density-first local order for the indexed engine."""
        return density_key(job, machine)

    def select_next(self, t: float, machine: int, state: EngineState) -> StartDecision | None:
        """Start the highest-density pending job at speed ``gamma * (total weight)^(1/alpha)``.

        The argmin comes from the indexed pending state; the weight total —
        which feeds the chosen speed — is still summed over the pending set
        in dispatch order, so the float result matches the scan path exactly.
        """
        chosen = state.pending_argmin(machine, self.priority_key)
        if chosen is None:
            return None
        jobs = state.jobs_by_id
        total_weight = sum(jobs[job_id].weight for job_id in state.machine_pending(machine))
        speed = self.gamma * total_weight ** (1.0 / self.alpha)
        if self.enable_rejection:
            self._counters[machine] = _TrackedWeightedCounter(
                job_id=chosen.id,
                counter=WeightedRunningJobCounter(self.epsilon, chosen.weight),
            )
        return StartDecision(job_id=chosen.id, speed=speed)

    # -- reporting -----------------------------------------------------------------

    def diagnostics(self) -> dict:
        """Per-run diagnostics for experiment reports."""
        return {
            "alpha": self.alpha,
            "gamma": self.gamma,
            "lambda_sum": sum(self.lambdas.values()),
            **self.log.as_dict(),
        }
