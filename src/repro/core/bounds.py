"""Closed-form theoretical guarantees stated in the paper.

These formulas are what the experiments compare empirical measurements
against; keeping them in one module avoids magic numbers in benchmarks and
tests.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError


def flow_time_competitive_ratio(epsilon: float) -> float:
    """Theorem 1 guarantee: ``2 * ((1 + eps) / eps)**2``.

    The algorithm of Section 2 is guaranteed to be at most this factor away
    from the optimal total flow time while rejecting at most a ``2 * eps``
    fraction of the jobs.
    """
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return 2.0 * ((1.0 + epsilon) / epsilon) ** 2


def flow_time_rejection_budget(epsilon: float) -> float:
    """Theorem 1 rejection budget: at most a ``2 * eps`` fraction of all jobs."""
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return min(1.0, 2.0 * epsilon)


def energy_flow_gamma(epsilon: float, alpha: float) -> float:
    """The speed-scaling constant γ chosen in the proof of Theorem 2.

    The paper sets ``γ = (eps/(1+eps))^{1/(α−1)} * (1/(α−1)) *
    (α − 1 + ln(α−1))^{(α−1)/α}``.  For ``α`` close to 1 the expression
    ``α − 1 + ln(α − 1)`` becomes negative and the closed form is not usable;
    in that regime we fall back to ``γ = (eps/(1+eps))^{1/(α−1)}`` which keeps
    the algorithm well defined (the guarantee of Theorem 2 is asymptotic in
    any case).  The fallback is documented behaviour, exercised by tests.
    """
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    if not (alpha > 1):
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    base = (epsilon / (1.0 + epsilon)) ** (1.0 / (alpha - 1.0))
    inner = (alpha - 1.0) + math.log(alpha - 1.0) if alpha > 1.0 else 0.0
    if inner <= 0:
        return base
    return base * (1.0 / (alpha - 1.0)) * inner ** ((alpha - 1.0) / alpha)


def energy_flow_competitive_ratio(epsilon: float, alpha: float) -> float:
    """Theorem 2 guarantee, in the explicit form derived in the proof.

    With the paper's γ the ratio is
    ``(2 + 2*((1+eps)/eps)^{1/(α−1)} + (eps/(1+eps))^2) /
    ((eps/(1+eps)) * ln(α−1)/(α−1+ln(α−1)))`` and is ``O((1 + 1/eps)^{α/(α−1)})``.
    For ``α`` where the denominator degenerates (``α <= 2`` makes
    ``ln(α−1) <= 0``) we return the asymptotic envelope
    ``c * (1 + 1/eps)^{α/(α−1)}`` with ``c = 8``, which upper bounds the
    paper's constant for the α range it targets (α in (1, 3]).
    """
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    if not (alpha > 1):
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    envelope = 8.0 * (1.0 + 1.0 / epsilon) ** (alpha / (alpha - 1.0))
    log_term = math.log(alpha - 1.0) if alpha > 1.0 else 0.0
    denom_core = (alpha - 1.0) + log_term
    if log_term <= 0 or denom_core <= 0:
        return envelope
    numerator = 2.0 + 2.0 * ((1.0 + epsilon) / epsilon) ** (1.0 / (alpha - 1.0)) + (
        epsilon / (1.0 + epsilon)
    ) ** 2
    denominator = (epsilon / (1.0 + epsilon)) * (log_term / denom_core)
    explicit = numerator / denominator
    return min(explicit, envelope) if explicit > 0 else envelope


def energy_flow_rejection_budget(epsilon: float) -> float:
    """Theorem 2 rejection budget: at most an ``eps`` fraction of total weight."""
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return min(1.0, epsilon)


def energy_min_competitive_ratio(alpha: float) -> float:
    """Theorem 3 guarantee for power functions ``P(s) = s**alpha``: ``alpha**alpha``."""
    if not (alpha >= 1):
        raise InvalidParameterError(f"alpha must be at least 1, got {alpha}")
    return alpha**alpha


def energy_min_lower_bound(alpha: float) -> float:
    """Lemma 2: every deterministic algorithm is at least ``(alpha/9)**alpha`` competitive."""
    if not (alpha >= 1):
        raise InvalidParameterError(f"alpha must be at least 1, got {alpha}")
    return (alpha / 9.0) ** alpha


def immediate_rejection_lower_bound(delta: float, constant: float = 0.25) -> float:
    """Lemma 1: immediate-rejection policies are ``Omega(sqrt(delta))`` competitive.

    ``delta`` is the ratio of the largest to the smallest processing time of
    the instance; ``constant`` is the hidden constant used when plotting the
    envelope in experiment E2.
    """
    if not (delta >= 1):
        raise InvalidParameterError(f"delta must be at least 1, got {delta}")
    return constant * math.sqrt(delta)


def speed_augmentation_competitive_ratio(epsilon_speed: float, epsilon_reject: float) -> float:
    """Guarantee of the ESA'16 algorithm [5]: ``O(1/(eps_s * eps_r))``.

    Used as the reference envelope in experiment E6 (hidden constant 1).
    """
    if not (epsilon_speed > 0 and epsilon_reject > 0):
        raise InvalidParameterError("both augmentation parameters must be positive")
    return 1.0 / (epsilon_speed * epsilon_reject)
