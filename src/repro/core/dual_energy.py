"""Dual accounting for the Section 3 analysis (Lemma 5 / Lemma 6).

The convex-programming relaxation of the weighted flow-time plus energy
problem has dual constraints

.. math::

    \\frac{\\lambda_j}{p_{ij}} \\le \\delta_{ij}(t - r_j + p_{ij})
        + \\alpha\\, u_i(t)^{\\alpha-1}
        + \\frac{\\alpha}{\\gamma(\\alpha-1)} w_j^{(\\alpha-1)/\\alpha}

for every machine ``i``, job ``j`` and time ``t >= r_j``, where

.. math::

    u_i(t) = \\Big(\\frac{\\epsilon}{\\gamma(1+\\epsilon)(\\alpha-1)}\\Big)^{1/(\\alpha-1)}
             V_i(t)^{1/\\alpha}

and ``V_i(t)`` is the total *fractional* weight (weight scaled by remaining
volume) of jobs dispatched to ``i`` that are not yet definitively finished.

:class:`EnergyFlowDualAccountant` reconstructs ``V_i(t)`` from the finished
simulation and checks the constraints on sampled times, mirroring
:class:`repro.core.dual.FlowTimeDualAccountant` for Section 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.schedule import SimulationResult
from repro.utils.numeric import EPS


@dataclass(frozen=True)
class EnergyDualViolation:
    """A sampled Section 3 dual constraint that failed by more than the tolerance."""

    job_id: int
    machine: int
    time: float
    lhs: float
    rhs: float

    @property
    def gap(self) -> float:
        """Amount by which the constraint is violated."""
        return self.lhs - self.rhs


@dataclass
class EnergyDualCheckResult:
    """Outcome of a Section 3 dual verification pass."""

    lambda_sum: float
    checked_constraints: int
    violations: list[EnergyDualViolation] = field(default_factory=list)
    monotonicity_violations: int = 0

    @property
    def feasible(self) -> bool:
        """``True`` when every sampled constraint held."""
        return not self.violations


class EnergyFlowDualAccountant:
    """Reconstructs the Section 3 dual quantities from a finished run."""

    def __init__(self, result: SimulationResult, scheduler: RejectionEnergyFlowScheduler) -> None:
        if not scheduler.lambdas:
            raise InvalidParameterError(
                "the scheduler has no recorded lambda values; run it through the engine first"
            )
        self.result = result
        self.scheduler = scheduler
        self.alpha = scheduler.alpha
        self.gamma = scheduler.gamma
        self.epsilon = scheduler.epsilon
        self._jobs = {job.id: job for job in result.instance.jobs}
        self._dispatch_machine = {
            job_id: choice[0] for job_id, choice in scheduler.lambda_choices.items()
        }
        self._intervals_by_job: dict[int, list] = {}
        for iv in result.intervals:
            self._intervals_by_job.setdefault(iv.job_id, []).append(iv)
        self._settle_time: dict[int, float] = {}
        for record in result.records.values():
            if record.rejected:
                self._settle_time[record.job_id] = float(record.rejection_time or record.release)
            else:
                self._settle_time[record.job_id] = float(record.completion or record.release)
        self._definitive_finish = self._compute_definitive_finish()

    # -- remaining volume and fractional weight --------------------------------------

    def _compute_definitive_finish(self) -> dict[int, float]:
        """Completion/rejection time extended by the Rule-rejection remainders."""
        events_by_machine: dict[int, list] = {}
        for event in self.scheduler.rejection_events:
            events_by_machine.setdefault(event.machine, []).append(event)
        finish: dict[int, float] = {}
        for job_id, settle in self._settle_time.items():
            job = self._jobs[job_id]
            machine = self._dispatch_machine.get(job_id)
            extension = 0.0
            if machine is not None:
                for event in events_by_machine.get(machine, []):
                    if job.release <= event.time <= settle + EPS:
                        extension += event.remaining_time
            finish[job_id] = settle + extension
        return finish

    def remaining_volume(self, job_id: int, machine: int, t: float) -> float:
        """Remaining processing volume ``q_ij(t)`` of a job dispatched to ``machine``."""
        job = self._jobs[job_id]
        total = job.size_on(machine)
        executed = 0.0
        for iv in self._intervals_by_job.get(job_id, []):
            if iv.machine != machine:
                continue
            overlap = max(0.0, min(t, iv.end) - iv.start)
            executed += overlap * iv.speed
        return max(0.0, total - executed)

    def fractional_weight(self, machine: int, t: float) -> float:
        """``V_i(t)``: total fractional weight of jobs not yet definitively finished."""
        total = 0.0
        for job_id, dispatch in self._dispatch_machine.items():
            if dispatch != machine:
                continue
            job = self._jobs[job_id]
            if job.release > t + EPS:
                continue
            if t >= self._definitive_finish[job_id] - EPS:
                continue
            p = job.size_on(machine)
            if math.isinf(p) or p <= 0:
                continue
            total += job.weight * self.remaining_volume(job_id, machine, t) / p
        return total

    def u(self, machine: int, t: float) -> float:
        """``u_i(t)`` as defined in the paper's dual construction."""
        scale = (
            self.epsilon / (self.gamma * (1.0 + self.epsilon) * (self.alpha - 1.0))
        ) ** (1.0 / (self.alpha - 1.0))
        return scale * self.fractional_weight(machine, t) ** (1.0 / self.alpha)

    # -- checks ----------------------------------------------------------------------

    def check_monotonicity(self, machine: int, times: list[float] | None = None) -> int:
        """Count decreases of ``V_i(t)`` across arrival times (Lemma 5 says none at arrivals).

        ``V_i(t)`` naturally decreases as work is processed; Lemma 5 states it
        never decreases *because of* an arrival or a rejection.  We therefore
        compare ``V_i`` just before and just after each arrival to the machine
        and count decreases beyond tolerance.
        """
        arrivals = sorted(
            self._jobs[job_id].release
            for job_id, dispatch in self._dispatch_machine.items()
            if dispatch == machine
        )
        times = arrivals if times is None else times
        violations = 0
        for t in times:
            before = self.fractional_weight(machine, max(0.0, t - 1e-6))
            after = self.fractional_weight(machine, t + 1e-6)
            if after < before - 1e-6:
                violations += 1
        return violations

    def check_feasibility(
        self,
        job_ids: list[int] | None = None,
        samples_per_job: int = 25,
        tolerance: float = 1e-6,
    ) -> EnergyDualCheckResult:
        """Verify the Lemma 6 dual constraints on sampled (job, machine, time) triples."""
        instance = self.result.instance
        if job_ids is None:
            job_ids = [job.id for job in instance.jobs]
        horizon = max(self._definitive_finish.values(), default=0.0)

        violations: list[EnergyDualViolation] = []
        checked = 0
        const_term_scale = self.alpha / (self.gamma * (self.alpha - 1.0))
        for job_id in job_ids:
            job = self._jobs[job_id]
            lam = self.scheduler.lambdas.get(job_id)
            if lam is None:
                continue
            sample_times = [job.release + k * max(horizon - job.release, 1.0) / samples_per_job
                            for k in range(samples_per_job + 1)]
            for machine in range(instance.num_machines):
                p_ij = job.size_on(machine)
                if math.isinf(p_ij):
                    continue
                delta_ij = job.weight / p_ij
                w_term = const_term_scale * job.weight ** ((self.alpha - 1.0) / self.alpha)
                for t in sample_times:
                    checked += 1
                    lhs = lam / p_ij
                    rhs = (
                        delta_ij * (t - job.release + p_ij)
                        + self.alpha * self.u(machine, t) ** (self.alpha - 1.0)
                        + w_term
                    )
                    if lhs > rhs + tolerance:
                        violations.append(
                            EnergyDualViolation(
                                job_id=job_id, machine=machine, time=t, lhs=lhs, rhs=rhs
                            )
                        )

        monotonicity = sum(
            self.check_monotonicity(machine) for machine in range(instance.num_machines)
        )
        return EnergyDualCheckResult(
            lambda_sum=sum(self.scheduler.lambdas.values()),
            checked_constraints=checked,
            violations=violations,
            monotonicity_violations=monotonicity,
        )
