"""Dual-fitting bookkeeping for the Section 2 analysis (Lemma 4, Theorem 1).

The paper's analysis builds an explicit feasible solution of the dual of the
time-indexed LP relaxation:

* ``lambda_j = eps/(1+eps) * min_i lambda_ij`` — set once at the arrival of
  job ``j`` (recorded by the scheduler);
* ``beta_i(t) = eps/(1+eps)^2 * (|U_i(t)| + |V_i(t)|)`` where ``U_i(t)`` is the
  set of pending jobs of machine ``i`` and ``V_i(t)`` the set of jobs that are
  completed/rejected but not yet *definitively finished* (their completion
  time is extended by the work of Rule-1 rejections that happened while they
  were alive, and by an explicit adjustment for Rule-2 rejected jobs).

:class:`FlowTimeDualAccountant` reconstructs these quantities from a finished
simulation plus the scheduler's recorded events and answers two questions:

1. Is the dual solution feasible (Lemma 4), i.e. does
   ``lambda_j / p_ij <= (t - r_j)/p_ij + 1 + beta_i(t)`` hold for every
   machine ``i`` and (sampled) time ``t >= r_j``?
2. How large is the dual objective
   ``sum_j lambda_j - sum_i ∫ beta_i(t) dt`` compared to the algorithm's
   total flow time?  (Theorem 1 shows it is at least
   ``(eps/(1+eps))^2 * sum_j (C~_j - r_j) >= (eps/(1+eps))^2 * sum_j F_j``.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.schedule import SimulationResult
from repro.utils.numeric import EPS


@dataclass(frozen=True)
class DualConstraintViolation:
    """A sampled dual constraint that failed by more than the tolerance."""

    job_id: int
    machine: int
    time: float
    lhs: float
    rhs: float

    @property
    def gap(self) -> float:
        """Amount by which the constraint is violated."""
        return self.lhs - self.rhs


@dataclass
class DualCheckResult:
    """Outcome of a dual-fitting verification pass."""

    lambda_sum: float
    beta_integral: float
    dual_objective: float
    algorithm_flow_time: float
    extended_flow_time: float
    checked_constraints: int
    violations: list[DualConstraintViolation] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """``True`` when every sampled dual constraint held."""
        return not self.violations

    @property
    def dual_to_flow_ratio(self) -> float:
        """Dual objective divided by the algorithm's flow time (lower-bound strength)."""
        if self.algorithm_flow_time <= 0:
            return math.inf
        return self.dual_objective / self.algorithm_flow_time


class FlowTimeDualAccountant:
    """Reconstructs the Section 2 dual solution from a finished run."""

    def __init__(
        self,
        result: SimulationResult,
        scheduler: RejectionFlowTimeScheduler,
    ) -> None:
        if not scheduler.lambdas:
            raise InvalidParameterError(
                "the scheduler has no recorded lambda values; run it through the engine first"
            )
        self.result = result
        self.scheduler = scheduler
        self.epsilon = scheduler.epsilon
        self._jobs = {job.id: job for job in result.instance.jobs}
        self._dispatch_machine: dict[int, int] = {
            job_id: choice[0] for job_id, choice in scheduler.lambda_choices.items()
        }
        self._settle_time: dict[int, float] = {}
        for record in result.records.values():
            if record.rejected:
                self._settle_time[record.job_id] = float(record.rejection_time or record.release)
            else:
                self._settle_time[record.job_id] = float(record.completion or record.release)
        self._definitive_finish = self._compute_definitive_finish()

    # -- definitive finish times ---------------------------------------------------

    def _compute_definitive_finish(self) -> dict[int, float]:
        """``C~_j`` for every job, per the paper's definition."""
        rule1_by_machine: dict[int, list] = {}
        for event in self.scheduler.rule1_events:
            rule1_by_machine.setdefault(event.machine, []).append(event)
        rule2_adjustment = {event.job_id: event.adjustment for event in self.scheduler.rule2_events}

        finish: dict[int, float] = {}
        for job_id, settle in self._settle_time.items():
            job = self._jobs[job_id]
            machine = self._dispatch_machine.get(job_id)
            extension = 0.0
            if machine is not None:
                for event in rule1_by_machine.get(machine, []):
                    # Rule-1 rejections that happened while j was alive
                    # (between its release and its completion/rejection),
                    # including j's own rejection.
                    if job.release <= event.time <= settle + EPS:
                        extension += event.remaining_work
            extension += rule2_adjustment.get(job_id, 0.0)
            finish[job_id] = settle + extension
        return finish

    def definitive_finish(self, job_id: int) -> float:
        """``C~_j`` of one job."""
        return self._definitive_finish[job_id]

    # -- U_i(t), V_i(t), beta_i(t) ---------------------------------------------------

    def pending_count(self, machine: int, t: float) -> int:
        """``|U_i(t)|`` — released, dispatched to ``i`` and not yet completed/rejected."""
        count = 0
        for job_id, dispatch in self._dispatch_machine.items():
            if dispatch != machine:
                continue
            job = self._jobs[job_id]
            if job.release <= t + EPS and t < self._settle_time[job_id] - EPS:
                count += 1
        return count

    def lingering_count(self, machine: int, t: float) -> int:
        """``|V_i(t)|`` — completed/rejected on ``i`` but not yet definitively finished."""
        count = 0
        for job_id, dispatch in self._dispatch_machine.items():
            if dispatch != machine:
                continue
            settle = self._settle_time[job_id]
            if settle - EPS <= t < self._definitive_finish[job_id] - EPS:
                count += 1
        return count

    def beta(self, machine: int, t: float) -> float:
        """``beta_i(t)`` of the paper."""
        scale = self.epsilon / (1.0 + self.epsilon) ** 2
        return scale * (self.pending_count(machine, t) + self.lingering_count(machine, t))

    def beta_integral(self) -> float:
        """``sum_i ∫ beta_i(t) dt = eps/(1+eps)^2 * sum_j (C~_j - r_j)``.

        Follows from the fact that each job contributes 1 to
        ``|U_i(t)| + |V_i(t)|`` exactly during ``[r_j, C~_j)``.
        """
        scale = self.epsilon / (1.0 + self.epsilon) ** 2
        total = 0.0
        for job_id, finish in self._definitive_finish.items():
            total += finish - self._jobs[job_id].release
        return scale * total

    # -- feasibility and objective ---------------------------------------------------

    def _sample_times(self, release: float, horizon: float, samples: int) -> list[float]:
        times = {release, release + EPS}
        events = sorted(set(self._settle_time.values()) | {j.release for j in self._jobs.values()})
        for t in events:
            if t >= release:
                times.add(t)
                times.add(t + 2 * EPS)
        if len(times) > samples:
            ordered = sorted(times)
            step = max(1, len(ordered) // samples)
            times = set(ordered[::step]) | {release, release + EPS}
        if horizon > release:
            for k in range(1, 5):
                times.add(release + k * (horizon - release) / 5.0)
        return sorted(times)

    def check_feasibility(
        self,
        job_ids: list[int] | None = None,
        samples_per_job: int = 40,
        tolerance: float = 1e-7,
    ) -> DualCheckResult:
        """Verify the dual constraints on a sample of (job, machine, time) triples.

        The constraint of the dual LP is
        ``lambda_j / p_ij - beta_i(t) <= (t - r_j)/p_ij + 1`` for every machine
        ``i``, job ``j`` and time ``t >= r_j``; Lemma 4 proves it always holds
        for the constructed solution.
        """
        instance = self.result.instance
        horizon = max(self._definitive_finish.values(), default=0.0)
        if job_ids is None:
            job_ids = [job.id for job in instance.jobs]

        violations: list[DualConstraintViolation] = []
        checked = 0
        for job_id in job_ids:
            job = self._jobs[job_id]
            lam = self.scheduler.lambdas.get(job_id)
            if lam is None:
                continue
            for t in self._sample_times(job.release, horizon, samples_per_job):
                for machine in range(instance.num_machines):
                    p_ij = job.size_on(machine)
                    if math.isinf(p_ij):
                        continue
                    checked += 1
                    lhs = lam / p_ij
                    rhs = (t - job.release) / p_ij + 1.0 + self.beta(machine, t)
                    if lhs > rhs + tolerance:
                        violations.append(
                            DualConstraintViolation(
                                job_id=job_id, machine=machine, time=t, lhs=lhs, rhs=rhs
                            )
                        )

        lambda_sum = sum(self.scheduler.lambdas.values())
        beta_int = self.beta_integral()
        flow = sum(record.flow_time for record in self.result.records.values())
        extended = sum(
            self._definitive_finish[job_id] - self._jobs[job_id].release
            for job_id in self._definitive_finish
        )
        return DualCheckResult(
            lambda_sum=lambda_sum,
            beta_integral=beta_int,
            dual_objective=lambda_sum - beta_int,
            algorithm_flow_time=flow,
            extended_flow_time=extended,
            checked_constraints=checked,
            violations=violations,
        )

    def theoretical_dual_lower_bound(self) -> float:
        """The analysis' lower bound ``(eps/(1+eps))^2 * sum_j (C~_j - r_j)``."""
        scale = (self.epsilon / (1.0 + self.epsilon)) ** 2
        total = sum(
            self._definitive_finish[job_id] - self._jobs[job_id].release
            for job_id in self._definitive_finish
        )
        return scale * total
