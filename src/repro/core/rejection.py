"""Rejection rules of the paper, as reusable counter objects.

Section 2 uses two rules:

* **Rule 1** — when a job ``j`` starts executing on machine ``i`` a counter
  ``v_j`` is created at zero; every time another job is dispatched to ``i``
  during ``j``'s execution the counter increases by one.  The first time
  ``v_j`` reaches ``1/epsilon``, job ``j`` (the *running* job) is interrupted
  and rejected.

* **Rule 2** — each machine has a counter ``c_i`` starting at zero; every
  dispatch to ``i`` increases it by one.  The first time ``c_i`` reaches
  ``1 + 1/epsilon`` the pending job with the largest processing time on ``i``
  (excluding the running job) is rejected and ``c_i`` resets to zero.

Section 3 replaces Rule 1 with a *weighted* rule: ``v_j`` increases by the
weight of the dispatched job and ``j`` is rejected the first time
``v_j > w_j / epsilon``.

Because ``1/epsilon`` is generally not an integer while the counters are, the
"first time the counter equals the threshold" is implemented as "the first
time the counter is at least the threshold"; see
:func:`repro.utils.numeric.integer_threshold`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError
from repro.utils.numeric import EPS, integer_threshold


def check_epsilon(epsilon: float) -> float:
    """Validate the rejection parameter ``0 < epsilon < 1`` (paper's assumption).

    Values ``>= 1`` are accepted with a permissive interpretation (the rules
    simply fire more often), but non-positive values are rejected because the
    thresholds ``1/epsilon`` would be meaningless.
    """
    if not (epsilon > 0):
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    return float(epsilon)


@dataclass
class RunningJobCounter:
    """Rule 1 counter attached to the job currently running on one machine.

    Parameters
    ----------
    epsilon:
        The rejection parameter; the rule fires once ``ceil(1/epsilon)``
        dispatches have been observed during the execution.
    """

    epsilon: float
    count: int = 0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        self.threshold = integer_threshold(1.0 / self.epsilon)

    def record_dispatch(self) -> bool:
        """Register one dispatch to the machine; return ``True`` when the rule fires."""
        self.count += 1
        return self.count >= self.threshold

    @property
    def fired(self) -> bool:
        """``True`` once the threshold has been reached."""
        return self.count >= self.threshold


@dataclass
class MachineArrivalCounter:
    """Rule 2 per-machine counter.

    The rule fires (and the counter resets) once ``ceil(1 + 1/epsilon)``
    dispatches have accumulated since the last reset.
    """

    epsilon: float
    count: int = 0
    fired_times: int = 0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        self.threshold = integer_threshold(1.0 + 1.0 / self.epsilon)

    def record_dispatch(self) -> bool:
        """Register one dispatch; return ``True`` (and reset) when the rule fires."""
        self.count += 1
        if self.count >= self.threshold:
            self.count = 0
            self.fired_times += 1
            return True
        return False


@dataclass
class WeightedRunningJobCounter:
    """Section 3 weighted rejection counter for the running job.

    ``v_j`` accumulates the *weight* of every job dispatched to the machine
    during ``j``'s execution; the rule fires the first time
    ``v_j > w_j / epsilon`` (strict inequality, as in the paper).
    """

    epsilon: float
    job_weight: float
    accumulated: float = 0.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if not (self.job_weight > 0):
            raise InvalidParameterError(
                f"job weight must be positive, got {self.job_weight}"
            )
        self.threshold = self.job_weight / self.epsilon

    def record_dispatch(self, weight: float) -> bool:
        """Register a dispatch of the given weight; ``True`` when the rule fires."""
        if weight < 0:
            raise InvalidParameterError(f"dispatch weight must be non-negative, got {weight}")
        self.accumulated += weight
        return self.accumulated > self.threshold + EPS

    @property
    def fired(self) -> bool:
        """``True`` once the accumulated weight exceeds the threshold."""
        return self.accumulated > self.threshold + EPS


@dataclass
class RejectionLog:
    """Bookkeeping of which rule rejected which job (used by ablations and E9)."""

    rule1: list[int] = field(default_factory=list)
    rule2: list[int] = field(default_factory=list)
    weighted: list[int] = field(default_factory=list)

    def total(self) -> int:
        """Total number of logged rejections."""
        return len(self.rule1) + len(self.rule2) + len(self.weighted)

    def as_dict(self) -> dict:
        """Plain-dict summary for result extras."""
        return {
            "rule1_rejections": len(self.rule1),
            "rule2_rejections": len(self.rule2),
            "weighted_rejections": len(self.weighted),
        }
