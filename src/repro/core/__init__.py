"""The paper's contribution: rejection-based online non-preemptive schedulers.

Three algorithms are implemented, one per section of the paper:

* :class:`~repro.core.flow_time.RejectionFlowTimeScheduler` — Theorem 1,
  total flow-time minimisation on unrelated machines, ``2((1+eps)/eps)^2``
  competitive while rejecting at most a ``2*eps`` fraction of the jobs.
* :class:`~repro.core.flow_time_energy.RejectionEnergyFlowScheduler` —
  Theorem 2, weighted flow-time plus energy in the speed-scaling model,
  ``O((1+1/eps)^{alpha/(alpha-1)})`` competitive while rejecting at most an
  ``eps`` fraction of the total weight.
* :class:`~repro.core.energy_min.ConfigLPEnergyScheduler` — Theorem 3,
  energy minimisation with deadlines via the configuration-LP primal-dual
  greedy, ``alpha^alpha`` competitive for power functions ``s^alpha``.

Supporting modules implement the precedence orders, rejection counters, dual
variable bookkeeping (used to verify Lemma 4 / Lemma 6 empirically), the
(λ, μ)-smoothness machinery of Section 4 and the closed-form theoretical
bounds used by the experiments.
"""

from repro.core.ordering import spt_order, density_order, spt_key, density_key
from repro.core.rejection import (
    RunningJobCounter,
    MachineArrivalCounter,
    WeightedRunningJobCounter,
)
from repro.core.bounds import (
    flow_time_competitive_ratio,
    flow_time_rejection_budget,
    energy_flow_competitive_ratio,
    energy_flow_gamma,
    energy_min_competitive_ratio,
    energy_min_lower_bound,
    immediate_rejection_lower_bound,
)
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.dual import FlowTimeDualAccountant, DualCheckResult
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.core.dual_energy import EnergyFlowDualAccountant
from repro.core.energy_min import ConfigLPEnergyScheduler, EnergySchedule
from repro.core.smoothness import (
    smoothness_parameters,
    verify_smooth_inequality,
    smooth_competitive_ratio,
)

__all__ = [
    "spt_order",
    "density_order",
    "spt_key",
    "density_key",
    "RunningJobCounter",
    "MachineArrivalCounter",
    "WeightedRunningJobCounter",
    "flow_time_competitive_ratio",
    "flow_time_rejection_budget",
    "energy_flow_competitive_ratio",
    "energy_flow_gamma",
    "energy_min_competitive_ratio",
    "energy_min_lower_bound",
    "immediate_rejection_lower_bound",
    "RejectionFlowTimeScheduler",
    "FlowTimeDualAccountant",
    "DualCheckResult",
    "RejectionEnergyFlowScheduler",
    "EnergyFlowDualAccountant",
    "ConfigLPEnergyScheduler",
    "EnergySchedule",
    "smoothness_parameters",
    "verify_smooth_inequality",
    "smooth_competitive_ratio",
]
