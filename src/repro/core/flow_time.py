"""Theorem 1 algorithm: total flow-time minimisation with rejections.

The scheduler follows Section 2 of the paper exactly:

* **Dispatching.**  When job ``j`` arrives at time ``r_j`` it is immediately
  dispatched to the machine minimising

  .. math::

      \\lambda_{ij} = \\tfrac{1}{\\epsilon} p_{ij}
                      + \\sum_{\\ell \\preceq j} p_{i\\ell}
                      + \\sum_{\\ell \\succ j} p_{ij}

  where ``\\ell`` ranges over the *pending* jobs of machine ``i`` (excluding
  the one currently running) and ``\\preceq`` is the shortest-processing-time
  order on machine ``i`` (ties by release time).  The dual variable
  ``\\lambda_j = \\tfrac{\\epsilon}{1+\\epsilon}\\min_i \\lambda_{ij}`` is
  recorded for the dual-fitting verification (Lemma 4 / experiment E7).

* **Local scheduling.**  Whenever a machine becomes idle it starts the
  pending job that precedes all others in the SPT order.

* **Rejection Rule 1.**  The running job ``k`` of machine ``i`` is rejected
  the first time ``ceil(1/epsilon)`` jobs have been dispatched to ``i``
  during its execution.

* **Rejection Rule 2.**  Every ``ceil(1 + 1/epsilon)`` dispatches to machine
  ``i`` (counted by ``c_i``), the pending job with the largest processing
  time on ``i`` is rejected and ``c_i`` resets.

Both rules can be disabled individually (``enable_rule1`` / ``enable_rule2``)
for the ablation experiment E9; with both disabled the scheduler degenerates
into the rejection-free greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.core.ordering import spt_key
from repro.core.rejection import (
    MachineArrivalCounter,
    RejectionLog,
    RunningJobCounter,
    check_epsilon,
)
from repro.exceptions import InvalidParameterError
from repro.simulation.decisions import ArrivalDecision, Rejection
from repro.simulation.engine import FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.state import EngineState


@dataclass(frozen=True, slots=True)
class Rule1Event:
    """A Rule-1 rejection: which machine, when, and the remaining work discarded."""

    machine: int
    time: float
    job_id: int
    remaining_work: float


@dataclass(frozen=True, slots=True)
class Rule2Event:
    """A Rule-2 rejection and the definitive-finish adjustment of the paper."""

    machine: int
    time: float
    job_id: int
    adjustment: float


class RejectionFlowTimeScheduler(FlowTimePolicy):
    """The Section 2 online algorithm (Theorem 1).

    Parameters
    ----------
    epsilon:
        Rejection parameter in ``(0, 1)``; the algorithm rejects at most a
        ``2 * epsilon`` fraction of the jobs and is
        ``2((1+epsilon)/epsilon)^2``-competitive.
    enable_rule1, enable_rule2:
        Ablation switches; the paper's algorithm uses both.
    """

    def __init__(
        self,
        epsilon: float,
        enable_rule1: bool = True,
        enable_rule2: bool = True,
    ) -> None:
        self.epsilon = check_epsilon(epsilon)
        self.enable_rule1 = enable_rule1
        self.enable_rule2 = enable_rule2
        rules = []
        if enable_rule1:
            rules.append("r1")
        if enable_rule2:
            rules.append("r2")
        suffix = "+".join(rules) if rules else "none"
        self.name = f"rejection-flow-time(eps={epsilon:g},{suffix})"
        self.reset_state()

    #: The engine maintains Fenwick order statistics over the SPT order so
    #: ``lambda_ij`` is O(log n) instead of O(queue length) per machine.
    wants_prefix_stats = True

    # -- lifecycle -----------------------------------------------------------------

    def reset_state(self) -> None:
        """Clear all per-run bookkeeping."""
        self._instance: Instance | None = None
        self._rule1: dict[int, RunningJobCounter] = {}
        self._rule2: dict[int, MachineArrivalCounter] = {}
        #: Per-machine lazy max-heaps over dispatched jobs, keyed so the heap
        #: head is the Rule-2 victim (largest processing time, ties by
        #: earliest release then larger id — the order the reference ``max``
        #: over ``(size, -release, id)`` realised).  Entries go stale when a
        #: job starts or is rejected and are skipped against the live pending
        #: set.  Only maintained while Rule 2 is enabled.
        self._victims: list[list[tuple[tuple[float, float, int], Job]]] = []
        self.lambdas: dict[int, float] = {}
        self.lambda_choices: dict[int, tuple[int, float]] = {}
        self.rule1_events: list[Rule1Event] = []
        self.rule2_events: list[Rule2Event] = []
        self.log = RejectionLog()

    def reset(self, instance: Instance) -> None:
        """Engine hook: prepare for a fresh simulation of ``instance``."""
        self.reset_state()
        self._instance = instance
        self._rule2 = {
            i: MachineArrivalCounter(self.epsilon) for i in range(instance.num_machines)
        }
        self._victims = [[] for _ in range(instance.num_machines)]

    # -- dispatching ---------------------------------------------------------------

    def lambda_ij(self, job: Job, machine: int, state: EngineState) -> float:
        """The marginal-increase surrogate ``lambda_ij`` of the paper.

        The waiting sum and the succeeding count come from the engine's
        indexed pending state (scan for short queues, Fenwick prefix query
        past the cutoff — see
        :meth:`~repro.simulation.state.EngineState.pending_spt_stats`);
        on a detached :class:`EngineState` (unit tests, custom tooling) the
        scan branch reproduces the reference formulation bit-for-bit.
        """
        p_ij = job.size_on(machine)
        waiting, succeeding = state.pending_spt_stats(machine, job)
        return (p_ij / self.epsilon) + (waiting + p_ij) + succeeding * p_ij

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch ``job`` to the machine minimising ``lambda_ij`` and apply the rules."""
        fused_argmin = getattr(state, "spt_lambda_argmin", None)
        if fused_argmin is not None:
            # Vectorized dispatch state: one fused sweep over the SoA columns
            # computes the same per-machine lambdas in the same float order
            # and the same strict-< tie-break as the loop below.
            best_machine, best_lambda = fused_argmin(job, self.epsilon)
        else:
            best_machine = None
            best_lambda = float("inf")
            inf = float("inf")
            for machine, p_ij in enumerate(job.sizes):
                if p_ij == inf:
                    continue
                lam = self.lambda_ij(job, machine, state)
                if lam < best_lambda:
                    best_machine, best_lambda = machine, lam
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")

        self.lambdas[job.id] = (self.epsilon / (1.0 + self.epsilon)) * best_lambda
        self.lambda_choices[job.id] = (best_machine, best_lambda)

        rejections: list[Rejection] = []

        # Rule 1: the arriving job is one more dispatch during the execution of
        # the running job of the chosen machine.
        running = state.running(best_machine)
        if self.enable_rule1 and running is not None:
            counter = self._rule1.get(best_machine)
            if counter is not None and counter.job_id == running.job.id:
                if counter.counter.record_dispatch():
                    rejections.append(Rejection(running.job.id, reason="rule1"))
                    self.rule1_events.append(
                        Rule1Event(
                            machine=best_machine,
                            time=t,
                            job_id=running.job.id,
                            remaining_work=running.remaining_work(t),
                        )
                    )
                    self.log.rule1.append(running.job.id)
                    del self._rule1[best_machine]

        # Rule 2: one more dispatch to the chosen machine; on firing, evict the
        # pending job (including the one arriving right now) with the largest
        # processing time on that machine.
        push_arriving = True
        if self.enable_rule2:
            counter2 = self._rule2[best_machine]
            if counter2.record_dispatch():
                victim = self._rule2_victim(job, best_machine, state)
                if victim.id == job.id:
                    # The arriving job is evicted before ever becoming
                    # pending; keep it out of the victim heap.
                    push_arriving = False
                adjustment = self._rule2_adjustment(t, job, victim, best_machine, state)
                rejections.append(Rejection(victim.id, reason="rule2"))
                self.rule2_events.append(
                    Rule2Event(
                        machine=best_machine, time=t, job_id=victim.id, adjustment=adjustment
                    )
                )
                self.log.rule2.append(victim.id)

        if self.enable_rule2 and push_arriving:
            heappush(self._victims[best_machine], (self._victim_key(job, best_machine), job))
        return ArrivalDecision.dispatch(best_machine, rejections)

    @staticmethod
    def _victim_key(job: Job, machine: int) -> tuple[float, float, int]:
        """Min-heap key whose minimum is the Rule-2 victim.

        Rule 2 evicts the pending job maximising
        ``(size on machine, -release, id)``; negating every component turns
        that maximum into a heap minimum, and the id component keeps keys
        unique.
        """
        return (-job.size_on(machine), job.release, -job.id)

    def _rule2_victim(self, arriving: Job, machine: int, state: EngineState) -> Job:
        """The pending-or-arriving job Rule 2 evicts on ``machine``.

        The per-machine heap contains every job ever dispatched to the
        machine; entries whose job already started or was rejected are stale
        and skipped against the live pending set (Rule-1 victims are running,
        hence not pending, hence skipped automatically).  The arriving job is
        not in the heap yet and is compared against the head directly.
        """
        heap = self._victims[machine]
        pending = state.machine_pending(machine)
        while heap and heap[0][1].id not in pending:
            heappop(heap)
        arriving_key = self._victim_key(arriving, machine)
        if not heap or arriving_key < heap[0][0]:
            return arriving
        return heap[0][1]

    def _rule2_adjustment(
        self, t: float, arriving: Job, victim: Job, machine: int, state: EngineState
    ) -> float:
        """Definitive-finish adjustment of a Rule-2 rejected job (Section 2).

        The paper extends the completion time of a job rejected by Rule 2 by
        ``q_ik(r_jj) + sum_{l != jj} p_il + p_ij`` — the remaining work of the
        running job, the processing times of the other pending jobs and the
        rejected job's own processing time — so that the dual variables keep
        accounting for it until that later time.
        """
        running = state.running(machine)
        remaining = running.remaining_work(t) if running is not None else 0.0
        if state.engine_attached:
            # Engine-maintained O(1) running total; the arriving job is not
            # pending yet, so no exclusion is needed.
            pending_total = state.pending_size_sum(machine)
        else:
            pending_total = sum(
                other.size_on(machine)
                for other in state.pending_jobs(machine)
                if other.id != arriving.id
            )
        return remaining + pending_total + victim.size_on(machine)

    # -- local scheduling ----------------------------------------------------------

    def priority_key(self, job: Job, machine: int) -> tuple[float, float, int]:
        """Static SPT local order — lets the engine index the pending sets."""
        return spt_key(job, machine)

    @staticmethod
    def priority_rank_columns(columns):
        """Column view of :meth:`priority_key` over a SoA store, primary first.

        The vectorized backend lexsorts these columns directly instead of
        calling ``priority_key`` once per (job, machine) — same keys, same
        ranks, no per-row tuple construction.
        """
        return [
            (columns.size_cols[machine], columns.releases, columns.ids)
            for machine in range(columns.num_machines)
        ]

    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Start the pending job that precedes all others in the SPT order."""
        chosen = state.pending_argmin(machine, self.priority_key)
        if chosen is None:
            return None
        if self.enable_rule1:
            self._rule1[machine] = _TrackedCounter(
                job_id=chosen.id, counter=RunningJobCounter(self.epsilon)
            )
        return chosen.id

    # -- reporting -----------------------------------------------------------------

    def diagnostics(self) -> dict:
        """Per-run diagnostics merged into the simulation result's extras."""
        return {
            "lambda_sum": sum(self.lambdas.values()),
            **self.log.as_dict(),
            "rule1_events": len(self.rule1_events),
            "rule2_events": len(self.rule2_events),
        }


@dataclass
class _TrackedCounter:
    """A Rule-1 counter together with the job it belongs to."""

    job_id: int
    counter: RunningJobCounter
