"""Precedence orders used by the paper's algorithms.

Section 2 orders the pending jobs of a machine (excluding the running job) by
**non-decreasing processing time** on that machine, breaking ties by earliest
release time; a job ``j`` *precedes* ``l`` (written ``j ≺ l``) when it appears
earlier in this order.  Section 3 uses **non-increasing density**
``delta_ij = w_j / p_ij`` with the same tie-breaking.

Both orders additionally break remaining ties by job id so that the
implementation is fully deterministic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.simulation.job import Job


def spt_key(job: Job, machine: int) -> tuple[float, float, int]:
    """Sort key realising the Section 2 order (shortest processing time first)."""
    return (job.size_on(machine), job.release, job.id)


def density_key(job: Job, machine: int) -> tuple[float, float, int]:
    """Sort key realising the Section 3 order (highest density first)."""
    return (-job.density_on(machine), job.release, job.id)


def spt_order(jobs: Iterable[Job], machine: int) -> list[Job]:
    """Jobs sorted by the Section 2 precedence order on ``machine``."""
    return sorted(jobs, key=lambda job: spt_key(job, machine))


def density_order(jobs: Iterable[Job], machine: int) -> list[Job]:
    """Jobs sorted by the Section 3 precedence order on ``machine``."""
    return sorted(jobs, key=lambda job: density_key(job, machine))


def position_in_spt_order(job: Job, others: Sequence[Job], machine: int) -> int:
    """Number of jobs in ``others`` that precede ``job`` in the SPT order.

    ``others`` is the pending set the job is (virtually) inserted into; the
    job itself may or may not be part of it.
    """
    key = spt_key(job, machine)
    return sum(1 for other in others if other.id != job.id and spt_key(other, machine) < key)


def split_by_precedence(
    job: Job, others: Iterable[Job], machine: int, weighted: bool = False
) -> tuple[list[Job], list[Job]]:
    """Split ``others`` into (preceding-or-equal, succeeding) relative to ``job``.

    ``weighted`` selects the density order of Section 3 instead of the SPT
    order of Section 2.  The job itself is never included in either part.
    """
    key_fn = density_key if weighted else spt_key
    key = key_fn(job, machine)
    preceding: list[Job] = []
    succeeding: list[Job] = []
    for other in others:
        if other.id == job.id:
            continue
        if key_fn(other, machine) <= key:
            preceding.append(other)
        else:
            succeeding.append(other)
    return preceding, succeeding
