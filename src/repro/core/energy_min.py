"""Theorem 3 algorithm: non-preemptive energy minimisation with deadlines.

Section 4 of the paper considers jobs with release dates, deadlines and
machine-dependent volumes; every job must run non-preemptively at a constant
speed, finishing within its window.  Times and speeds are discretised (the
paper itself loses only a ``(1+epsilon)`` factor by doing so).

The online algorithm is a primal-dual greedy derived from a configuration LP:
when a job arrives, enumerate every valid *strategy* — a (machine, start slot,
speed) triple whose execution fits inside the job's window — and commit to the
strategy with the smallest marginal increase of the total energy

.. math::

    \\sum_t \\big[P_i(u_{it} + v) - P_i(u_{it})\\big],

where ``u_{it}`` is the speed machine ``i`` already carries at slot ``t``.
Committed strategies are never changed (the schedule is non-preemptive and
online).  For power functions ``P_i(s) = s^{\\alpha_i}`` the algorithm is
``alpha^alpha``-competitive where ``alpha = max_i alpha_i`` (Theorem 3), and
in general ``lambda/(1-mu)``-competitive for (λ, μ)-smooth powers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.timeline import DiscreteTimeline, Strategy


@dataclass
class EnergySchedule:
    """Result of an energy-minimisation run.

    Attributes
    ----------
    instance:
        The scheduled instance.
    strategies:
        The committed strategy of every job (keyed by job id).
    total_energy:
        Energy of the final schedule, measured directly from the timeline.
    marginal_costs:
        Marginal energy paid for each job at commit time; these are ``lambda``
        times the dual variables ``delta_j`` of the paper's analysis.
    timeline:
        The final per-machine speed profiles.
    algorithm:
        Label of the scheduler that produced the schedule.
    """

    instance: Instance
    strategies: dict[int, Strategy]
    total_energy: float
    marginal_costs: dict[int, float]
    timeline: DiscreteTimeline
    algorithm: str = "config-lp-greedy"
    extras: dict = field(default_factory=dict)

    def completion_time(self, job_id: int) -> float:
        """Completion time (end of the last occupied slot) of a job."""
        strategy = self.strategies[job_id]
        return self.timeline.time_of(strategy.end_slot)

    def start_time(self, job_id: int) -> float:
        """Start time of a job."""
        strategy = self.strategies[job_id]
        return self.timeline.time_of(strategy.start_slot)

    def validate(self, tol: float = 1e-9) -> None:
        """Check release dates, deadlines and volume coverage of every strategy."""
        jobs = {job.id: job for job in self.instance.jobs}
        for job_id, strategy in self.strategies.items():
            job = jobs[job_id]
            start = self.timeline.time_of(strategy.start_slot)
            end = self.timeline.time_of(strategy.end_slot)
            if start + tol < job.release:
                raise InfeasibleInstanceError(
                    f"job {job_id} starts at {start} before release {job.release}"
                )
            if job.deadline is not None and end > job.deadline + tol:
                raise InfeasibleInstanceError(
                    f"job {job_id} ends at {end} after deadline {job.deadline}"
                )
            executed = strategy.speed * strategy.slots * self.timeline.slot_length
            if executed + tol < job.size_on(strategy.machine):
                raise InfeasibleInstanceError(
                    f"job {job_id} executes {executed} < volume {job.size_on(strategy.machine)}"
                )

    def summary(self) -> dict:
        """Flat summary used by experiment reports."""
        return {
            "algorithm": self.algorithm,
            "num_jobs": len(self.strategies),
            "total_energy": self.total_energy,
            "max_machine_energy": max(
                (self.timeline.machine_energy(i) for i in range(self.timeline.num_machines)),
                default=0.0,
            ),
        }


class ConfigLPEnergyScheduler:
    """The Section 4 greedy primal-dual scheduler.

    Parameters
    ----------
    slot_length:
        Length of a discrete time slot.
    speeds_per_job:
        How many candidate speeds to enumerate per (job, machine) pair.  The
        candidate speeds are chosen so that the execution occupies
        ``1, 2, ..., speeds_per_job`` whole slots (capped by the job's window),
        i.e. speeds are aligned with the slot grid exactly as the paper's
        discretisation prescribes.
    speed_grid:
        Optional explicit speed grid overriding the per-job construction.
    """

    def __init__(
        self,
        slot_length: float = 1.0,
        speeds_per_job: int = 16,
        speed_grid: Sequence[float] | None = None,
    ) -> None:
        if slot_length <= 0:
            raise InvalidParameterError(f"slot_length must be positive, got {slot_length}")
        if speeds_per_job < 1:
            raise InvalidParameterError(
                f"speeds_per_job must be at least 1, got {speeds_per_job}"
            )
        self.slot_length = slot_length
        self.speeds_per_job = speeds_per_job
        self.speed_grid = None if speed_grid is None else tuple(float(s) for s in speed_grid)
        self.name = "config-lp-greedy"

    # -- candidate speeds ------------------------------------------------------------

    def candidate_speeds(self, job: Job, machine: int, timeline: DiscreteTimeline) -> list[float]:
        """Slot-aligned candidate speeds for a job on a machine."""
        if self.speed_grid is not None:
            return list(self.speed_grid)
        if job.deadline is None:
            raise InfeasibleInstanceError(
                f"job {job.id} has no deadline; the energy-minimisation model requires one"
            )
        volume = job.size_on(machine)
        if math.isinf(volume):
            return []
        window_slots = max(
            1, int(math.floor((job.deadline - job.release) / timeline.slot_length + 1e-9))
        )
        # Enumerate at most ``speeds_per_job`` candidate durations, spread
        # geometrically between 1 slot (fastest) and the whole window
        # (slowest).  Including the whole-window duration is essential: it is
        # the cheapest strategy on an empty machine, and capping the duration
        # instead would inflate the energy of long jobs artificially.
        if window_slots <= self.speeds_per_job:
            slot_counts = list(range(1, window_slots + 1))
        else:
            ratio = window_slots ** (1.0 / (self.speeds_per_job - 1))
            slot_counts = sorted(
                {
                    min(window_slots, max(1, int(round(ratio**k))))
                    for k in range(self.speeds_per_job)
                }
                | {1, window_slots}
            )
        return [volume / (slots * timeline.slot_length) for slots in slot_counts]

    def effective_slot_length(self, instance: Instance, max_slots: int = 20000) -> float:
        """Slot length adapted to the instance's tightest deadline window.

        The paper's discretisation assumes the grid is fine enough that every
        job has at least one valid strategy; when the configured
        ``slot_length`` is coarser than half the smallest window we refine it
        (bounded below so the horizon never exceeds ``max_slots`` slots).
        """
        windows = [job.window() for job in instance.jobs if job.deadline is not None]
        if not windows:
            return self.slot_length
        slot = min(self.slot_length, min(windows) / 2.0)
        horizon = max(
            (job.deadline for job in instance.jobs if job.deadline is not None),
            default=instance.horizon(),
        )
        return max(slot, horizon / max_slots)

    # -- main entry point --------------------------------------------------------------

    def schedule(self, instance: Instance, timeline: DiscreteTimeline | None = None) -> EnergySchedule:
        """Process the jobs of ``instance`` in release order and return the schedule."""
        if not instance.has_deadlines():
            raise InfeasibleInstanceError(
                "every job needs a deadline for the energy-minimisation problem"
            )
        if timeline is None:
            timeline = DiscreteTimeline.for_instance(
                instance, slot_length=self.effective_slot_length(instance)
            )

        strategies: dict[int, Strategy] = {}
        marginal_costs: dict[int, float] = {}
        for job in instance.jobs:  # instance.jobs are sorted by release date
            strategy, cost = self.best_strategy(job, instance, timeline)
            timeline.commit(strategy)
            strategies[job.id] = strategy
            marginal_costs[job.id] = cost

        schedule = EnergySchedule(
            instance=instance,
            strategies=strategies,
            total_energy=timeline.total_energy(),
            marginal_costs=marginal_costs,
            timeline=timeline,
            algorithm=self.name,
        )
        schedule.validate()
        return schedule

    def best_strategy(
        self, job: Job, instance: Instance, timeline: DiscreteTimeline
    ) -> tuple[Strategy, float]:
        """Strategy with the minimum marginal energy for ``job`` given the current profiles."""
        best: tuple[Strategy, float] | None = None
        for machine in job.eligible_machines():
            speeds = self.candidate_speeds(job, machine, timeline)
            for strategy in timeline.feasible_strategies(job, machine, speeds):
                cost = timeline.marginal_energy(
                    strategy.machine, strategy.start_slot, strategy.slots, strategy.speed
                )
                if best is None or cost < best[1] - 1e-15:
                    best = (strategy, cost)
        if best is None:
            raise InfeasibleInstanceError(
                f"job {job.id} has no feasible strategy (window too tight for the slot grid)"
            )
        return best

    # -- dual variables (Lemma 7) --------------------------------------------------------

    def dual_variables(
        self, schedule: EnergySchedule, smooth_lambda: float, smooth_mu: float
    ) -> dict:
        """The dual solution of Lemma 7 built from a finished schedule.

        ``delta_j`` is ``1/lambda`` times the marginal increase paid for job
        ``j``; ``gamma_i`` is ``-mu/lambda`` times the final energy of machine
        ``i``.  The dual objective ``sum_j delta_j + sum_i gamma_i`` equals
        ``(1-mu)/lambda`` times the algorithm's energy, which is exactly the
        lower bound Theorem 3 uses.
        """
        if smooth_lambda <= 0 or not (0 <= smooth_mu < 1):
            raise InvalidParameterError("need lambda > 0 and 0 <= mu < 1")
        delta = {
            job_id: cost / smooth_lambda for job_id, cost in schedule.marginal_costs.items()
        }
        gamma = {
            machine: -smooth_mu / smooth_lambda * schedule.timeline.machine_energy(machine)
            for machine in range(schedule.timeline.num_machines)
        }
        dual_objective = sum(delta.values()) + sum(gamma.values())
        return {
            "delta": delta,
            "gamma": gamma,
            "dual_objective": dual_objective,
            "primal_objective": schedule.total_energy,
            "certified_ratio_bound": smooth_lambda / (1.0 - smooth_mu),
        }
