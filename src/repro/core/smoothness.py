"""(λ, μ)-smoothness machinery used by the Section 4 analysis.

Definition 1 of the paper: a set function ``f`` is (λ, μ)-smooth when for any
set ``A = {a_1, ..., a_n}`` and any nested collection ``B_1 ⊆ ... ⊆ B_n ⊆ B``

.. math::

    \\sum_{i=1}^{n} \\big[f(B_i \\cup a_i) - f(B_i)\\big]
        \\le \\lambda f(A) + \\mu f(B).

For power functions ``P(s) = s^alpha`` over speed profiles (sets of speeds
summed pointwise) the relevant scalar form, the *smooth inequality* of Cohen,
Dürr and Thang, is: for any non-negative ``a_1..a_n`` and ``b_1..b_n``,

.. math::

    \\sum_{i=1}^n \\Big[\\big(b_i + \\textstyle\\sum_{j \\le i} a_j\\big)^\\alpha
        - \\big(\\textstyle\\sum_{j \\le i} a_j\\big)^\\alpha\\Big]
        \\le \\lambda(\\alpha) \\Big(\\sum_i b_i\\Big)^\\alpha
          + \\mu(\\alpha) \\Big(\\sum_i a_i\\Big)^\\alpha

with ``mu(alpha) = (alpha-1)/alpha`` and ``lambda(alpha) = Theta(alpha^{alpha-1})``,
which yields the ``alpha^alpha`` competitive ratio of Theorem 3.

The Theorem 3 *algorithm* never needs these constants — they appear only in
the analysis — so this module exists to (a) verify the inequality numerically
(property tests, experiment E7), and (b) turn smoothness parameters into the
certified competitive ratio ``lambda / (1 - mu)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class SmoothnessParameters:
    """A (λ, μ) pair together with the alpha it was derived for."""

    alpha: float
    lam: float
    mu: float

    @property
    def competitive_ratio(self) -> float:
        """The Theorem 3 guarantee ``lambda / (1 - mu)``."""
        return smooth_competitive_ratio(self.lam, self.mu)


def mu_default(alpha: float) -> float:
    """The paper's choice ``mu(alpha) = (alpha - 1) / alpha``."""
    if alpha < 1:
        raise InvalidParameterError(f"alpha must be at least 1, got {alpha}")
    return (alpha - 1.0) / alpha


def lambda_single_step(alpha: float, mu: float, grid: int = 4000, t_max: float = 64.0) -> float:
    """Numeric sup of ``(t+1)^alpha - (1+mu) t^alpha`` over ``t >= 0``.

    This is the smallest λ for which the *single-element* smooth inequality
    (``n = 1``, ``b`` normalised to 1) holds; the sequence form requires a λ
    at least this large.  It is Θ(alpha^{alpha-1}).
    """
    if alpha < 1:
        raise InvalidParameterError(f"alpha must be at least 1, got {alpha}")
    if not (0 <= mu < 1):
        raise InvalidParameterError(f"mu must lie in [0, 1), got {mu}")
    best = 1.0
    for k in range(grid + 1):
        t = t_max * k / grid
        value = (t + 1.0) ** alpha - (1.0 + mu) * t**alpha
        best = max(best, value)
    return best


def smoothness_parameters(alpha: float, safety: float = 2.0) -> SmoothnessParameters:
    """Smoothness parameters used for reporting the Theorem 3 certificate.

    ``mu = (alpha-1)/alpha`` as in the paper; ``lambda`` is the single-step
    numeric bound scaled by a ``safety`` factor to cover the sequence form
    (the paper only needs ``lambda = Theta(alpha^{alpha-1})``).  The resulting
    certified ratio ``lambda/(1-mu)`` is ``Theta(alpha^alpha)``.
    """
    mu = mu_default(alpha)
    lam = safety * lambda_single_step(alpha, mu)
    return SmoothnessParameters(alpha=alpha, lam=lam, mu=mu)


def smooth_competitive_ratio(lam: float, mu: float) -> float:
    """Theorem 3: a (λ, μ)-smooth instance admits a ``lambda/(1-mu)``-competitive greedy."""
    if lam <= 0:
        raise InvalidParameterError(f"lambda must be positive, got {lam}")
    if not (0 <= mu < 1):
        raise InvalidParameterError(f"mu must lie in [0, 1), got {mu}")
    return lam / (1.0 - mu)


def smooth_inequality_lhs(alpha: float, a: Sequence[float], b: Sequence[float]) -> float:
    """Left-hand side of the smooth inequality for the scalar power function."""
    if len(a) != len(b):
        raise InvalidParameterError("a and b must have equal length")
    prefix = 0.0
    total = 0.0
    for a_i, b_i in zip(a, b):
        if a_i < 0 or b_i < 0:
            raise InvalidParameterError("smooth inequality requires non-negative values")
        total += (b_i + prefix + a_i) ** alpha - (prefix + a_i) ** alpha
        prefix += a_i
    return total


def smooth_inequality_rhs(
    alpha: float, a: Sequence[float], b: Sequence[float], lam: float, mu: float
) -> float:
    """Right-hand side ``lambda * (sum b)^alpha + mu * (sum a)^alpha``."""
    return lam * sum(b) ** alpha + mu * sum(a) ** alpha


def required_lambda(alpha: float, a: Sequence[float], b: Sequence[float], mu: float) -> float:
    """Smallest λ making the smooth inequality hold for the given sequences."""
    total_b = sum(b)
    denominator = total_b**alpha if total_b > 0 else 0.0
    if denominator <= 0.0:
        # Either no b at all, or sum(b)^alpha underflowed to zero; in both
        # cases the inequality holds for any lambda (the LHS underflows too).
        return 0.0
    lhs = smooth_inequality_lhs(alpha, a, b)
    return max(0.0, (lhs - mu * sum(a) ** alpha) / denominator)


def verify_smooth_inequality(
    alpha: float,
    a: Sequence[float],
    b: Sequence[float],
    lam: float | None = None,
    mu: float | None = None,
    tolerance: float = 1e-9,
) -> bool:
    """Check the smooth inequality for explicit sequences and parameters.

    ``lam``/``mu`` default to :func:`smoothness_parameters`.  Returns ``True``
    when the inequality holds within the tolerance.
    """
    mu_val = mu_default(alpha) if mu is None else mu
    lam_val = smoothness_parameters(alpha).lam if lam is None else lam
    lhs = smooth_inequality_lhs(alpha, a, b)
    rhs = smooth_inequality_rhs(alpha, a, b, lam_val, mu_val)
    return lhs <= rhs + tolerance


def power_smoothness_certificate(alpha: float) -> dict:
    """Bundle of the Theorem 3 constants for power functions ``s^alpha``.

    Reports both the paper's headline ``alpha^alpha`` bound and the certified
    ``lambda/(1-mu)`` bound obtained from the numerically estimated λ.
    """
    params = smoothness_parameters(alpha)
    return {
        "alpha": alpha,
        "mu": params.mu,
        "lambda": params.lam,
        "certified_ratio": params.competitive_ratio,
        "paper_ratio": alpha**alpha,
    }
