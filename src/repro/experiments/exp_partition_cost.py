"""E16 — the price of partitioned online scheduling.

The paper's competitive guarantees assume one coordinator that sees every
arrival and owns every machine.  E16 measures what sharding that coordinator
costs: each (scenario × k) cell solves the scenario's job stream with
:func:`repro.parallel.shard_solve` — ``k`` independent streaming solvers,
each owning a strided ``1/k`` slice of the fleet and the sub-stream the
partition assigns it — and reports the merged objective's **ratio vs the
single coordinator** (``k == 1``, which is byte-identical to plain
:func:`repro.solve`).

The ratio isolates pure coordination loss: every shard runs the same
algorithm with the same parameters, so anything above 1.0 is the price of
not seeing the other shards' jobs and machines.  ``k == 1`` rows anchor each
scenario at exactly 1.0.

Throughput (events/s over the whole sharded solve) is off by default for the
usual reason: campaign artifacts must stay byte-reproducible, and E16 is in
the small/medium grids plus the nightly byte-stability double-run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.parallel import shard_solve
from repro.workloads.scenarios import SCENARIOS, get_scenario

#: All catalog scenarios, in reporting order (the default sweep).
ALL_SCENARIOS = tuple(SCENARIOS)


@dataclass
class PartitionCostConfig:
    """Sweep parameters of experiment E16."""

    scenarios: tuple[str, ...] = ALL_SCENARIOS
    #: Shard counts to sweep; must include 1 for the ratio anchor.
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    partition: str = "hash"
    algorithm: str = "rejection-flow"
    num_jobs: int = 400
    num_machines: int = 8
    epsilon: float = 0.5
    alpha: float = 3.0
    seed: int = 2018
    #: Worker processes for the per-cell shard fan-out.
    workers: int = 1
    #: Wall-clock events/s per cell; leave off for byte-reproducible artifacts.
    measure_throughput: bool = False


COLUMNS = (
    "scenario",
    "k",
    "partition",
    "objective_value",
    "ratio_vs_single",
    "rejected_fraction",
    "events",
    "events_per_s",
)


def run(config: PartitionCostConfig) -> ExperimentResult:
    """Run experiment E16 and return the partition-cost table."""
    if not config.shard_counts:
        raise ValueError("shard_counts must be non-empty")
    cells: list[dict] = []
    for scenario_name in config.scenarios:
        scenario = get_scenario(scenario_name)
        chunks = list(
            scenario.job_chunks(
                config.num_jobs, config.num_machines, seed=config.seed
            )
        )
        for k in sorted(set(config.shard_counts)):
            start = time.perf_counter()
            result = shard_solve(
                chunks,
                config.algorithm,
                k,
                partition=config.partition,
                workers=config.workers,
                machines=config.num_machines,
                alpha=config.alpha,
                epsilon=config.epsilon,
            )
            elapsed = time.perf_counter() - start
            cells.append(
                {
                    "scenario": scenario_name,
                    "k": k,
                    "partition": config.partition,
                    "objective_value": result.objective_value,
                    "rejected_fraction": result.row["rejected_fraction"],
                    "events": int(result.payload["engine_events"]),
                    "elapsed_s": elapsed,
                }
            )

    # Ratio vs the single-coordinator (k=1) solve of the same scenario.
    single: dict[str, float] = {
        cell["scenario"]: cell["objective_value"]
        for cell in cells
        if cell["k"] == 1
    }
    for cell in cells:
        anchor = single.get(cell["scenario"])
        cell["ratio_vs_single"] = (
            cell["objective_value"] / anchor if anchor else float("nan")
        )

    table = ExperimentTable(
        title="E16: partition cost (k-sharded vs single coordinator)",
        columns=COLUMNS,
    )
    raw: dict = {
        "scenarios": list(config.scenarios),
        "shard_counts": sorted(set(config.shard_counts)),
        "partition": config.partition,
        "algorithm": config.algorithm,
        "rows": [],
    }
    for cell in cells:
        events_per_s = (
            cell["events"] / cell["elapsed_s"]
            if config.measure_throughput and cell["elapsed_s"] > 0
            else ""
        )
        table.add_row({**{c: cell.get(c, "") for c in COLUMNS},
                       "events_per_s": events_per_s})
        row = {k: v for k, v in cell.items() if k != "elapsed_s"}
        if config.measure_throughput:
            row["events_per_s"] = events_per_s
        raw["rows"].append(row)

    table.add_note(
        "ratio_vs_single is the merged k-shard objective over the k=1 objective "
        "on the same scenario (1.0 = no coordination loss; k=1 rows anchor at "
        "exactly 1.0). events is the deterministic simulator event count summed "
        "over shards. Wall-clock events/s appears only with "
        "measure_throughput=True so campaign artifacts stay byte-reproducible."
    )
    return ExperimentResult(
        experiment_id="E16",
        title="the price of partitioned online scheduling",
        tables=[table],
        raw=raw,
    )
