"""E7 — dual-fitting certificates: Lemma 4 and Lemma 6 checked empirically.

For each workload the experiment runs the Section 2 (flow time) and Section 3
(flow + energy) algorithms, reconstructs the dual solutions their analyses
define, and reports:

* the number of sampled dual constraints and how many were violated
  (Lemma 4 / Lemma 6 say: none);
* the dual objective next to the algorithm's cost and the analysis' lower
  bound ``(eps/(1+eps))^2 * sum_j (C~_j - r_j)``;
* the Lemma 5 monotonicity check of the fractional weight ``V_i(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.core.dual import FlowTimeDualAccountant
from repro.core.dual_energy import EnergyFlowDualAccountant
from repro.experiments.registry import ExperimentResult
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.solvers import make_policy
from repro.workloads.generators import InstanceGenerator, WeightedInstanceGenerator


@dataclass
class DualFittingExperimentConfig:
    """Sweep parameters of experiment E7."""

    epsilons: tuple[float, ...] = (0.25, 0.5)
    num_jobs: int = 80
    num_machines: int = 3
    alpha: float = 2.5
    samples_per_job: int = 20
    seed: int = 2018


FLOW_COLUMNS = (
    "epsilon",
    "checked_constraints",
    "violations",
    "lambda_sum",
    "beta_integral",
    "dual_objective",
    "algorithm_flow",
    "analysis_lower_bound",
)

ENERGY_COLUMNS = (
    "epsilon",
    "checked_constraints",
    "violations",
    "monotonicity_violations",
    "lambda_sum",
)


def run(config: DualFittingExperimentConfig) -> ExperimentResult:
    """Run experiment E7 and return its result tables."""
    flow_table = ExperimentTable(
        title="E7a: Section 2 dual feasibility (Lemma 4)", columns=FLOW_COLUMNS
    )
    energy_table = ExperimentTable(
        title="E7b: Section 3 dual feasibility (Lemma 6) and V_i(t) monotonicity (Lemma 5)",
        columns=ENERGY_COLUMNS,
    )
    raw: dict = {"flow": [], "energy": []}

    flow_instance = InstanceGenerator(
        num_machines=config.num_machines, seed=config.seed
    ).generate(config.num_jobs)
    weighted_instance = WeightedInstanceGenerator(
        num_machines=config.num_machines, alpha=config.alpha, seed=config.seed
    ).generate(config.num_jobs)

    for epsilon in config.epsilons:
        scheduler = make_policy("rejection-flow", epsilon=epsilon)
        result = FlowTimeEngine(flow_instance).run(scheduler)
        accountant = FlowTimeDualAccountant(result, scheduler)
        check = accountant.check_feasibility(samples_per_job=config.samples_per_job)
        row = {
            "epsilon": epsilon,
            "checked_constraints": check.checked_constraints,
            "violations": len(check.violations),
            "lambda_sum": check.lambda_sum,
            "beta_integral": check.beta_integral,
            "dual_objective": check.dual_objective,
            "algorithm_flow": check.algorithm_flow_time,
            "analysis_lower_bound": accountant.theoretical_dual_lower_bound(),
        }
        flow_table.add_row(row)
        raw["flow"].append(row)

        energy_scheduler = make_policy("rejection-energy-flow", epsilon=epsilon)
        energy_result = SpeedScalingEngine(weighted_instance).run(energy_scheduler)
        energy_accountant = EnergyFlowDualAccountant(energy_result, energy_scheduler)
        energy_check = energy_accountant.check_feasibility(
            samples_per_job=max(5, config.samples_per_job // 2)
        )
        energy_row = {
            "epsilon": epsilon,
            "checked_constraints": energy_check.checked_constraints,
            "violations": len(energy_check.violations),
            "monotonicity_violations": energy_check.monotonicity_violations,
            "lambda_sum": energy_check.lambda_sum,
        }
        energy_table.add_row(energy_row)
        raw["energy"].append(energy_row)

    flow_table.add_note("Lemma 4 predicts zero violations at every epsilon.")
    energy_table.add_note("Lemma 5/6 predict zero violations at every epsilon.")
    return ExperimentResult(
        experiment_id="E7",
        title="Dual-fitting certificates",
        tables=[flow_table, energy_table],
        raw=raw,
    )
