"""E12 — the scalability frontier: 100k-job instances end to end.

E8 documents how the simulator scales at the sizes the paper-reproduction
experiments use; E12 pushes the indexed scheduler state (see
``docs/ARCHITECTURE.md``, *Performance*) to its frontier: instances built by
the chunked numpy generators (``InstanceGenerator.generate_large``) and swept
across n ∈ {1k, 10k, 50k, 100k} for three schedulers of the flow-time model
— the paper's Theorem 1 algorithm, the rejection-free greedy baseline and
FCFS.  The table records wall time, event throughput and the process'
peak-RSS high-water mark, so regressions in either the generators or the
engines show up as a drop in ``events_per_s`` at the large sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.simulation.engine import FlowTimeEngine
from repro.solvers import make_policy
from repro.utils.memory import peak_rss_bytes
from repro.workloads.generators import InstanceGenerator


@dataclass
class ScalabilityFrontierConfig:
    """Sweep parameters of experiment E12."""

    job_counts: tuple[int, ...] = (1_000, 10_000, 50_000, 100_000)
    num_machines: int = 8
    algorithms: tuple[str, ...] = ("rejection-flow", "greedy", "fcfs")
    algorithm_params: dict = field(default_factory=lambda: {"rejection-flow": {"epsilon": 0.5}})
    size_distribution: str = "pareto"
    load: float = 0.9
    seed: int = 2018
    #: Dispatch mode forwarded to the engine (``None``: the engine default).
    dispatch: str | None = None
    repeats: int = 1


COLUMNS = (
    "num_jobs",
    "algorithm",
    "build_s",
    "wall_time_s",
    "events",
    "events_per_s",
    "jobs_per_s",
    "peak_rss_mb",
)

#: Process peak-RSS budget for the n=1M frontier point (MiB).  The measured
#: high-water mark on the reference run is ~1.4 GiB (chunked generation plus
#: the engine's SoA columns and indexed state); the budget leaves headroom
#: without masking a structural regression such as an accidental per-job
#: object copy, which would blow straight past it.
FRONTIER_1M_PEAK_RSS_BUDGET_MB = 2048


def frontier_1m_config() -> ScalabilityFrontierConfig:
    """E12's frontier point: n=1M through the vectorized SoA backend.

    Theorem 1 only — the rejection rules are what keeps the run finite under
    overload, and the point exists to pin the largest instance the engine
    handles end to end within :data:`FRONTIER_1M_PEAK_RSS_BUDGET_MB`.
    """
    return ScalabilityFrontierConfig(
        job_counts=(1_000_000,),
        algorithms=("rejection-flow",),
        dispatch="vectorized",
    )


def run(config: ScalabilityFrontierConfig) -> ExperimentResult:
    """Run experiment E12 and return its result table."""
    table = ExperimentTable(
        title="E12: scalability frontier (chunked generators + indexed dispatch)",
        columns=COLUMNS,
    )
    raw: dict = {"rows": []}

    for num_jobs in config.job_counts:
        generator = InstanceGenerator(
            num_machines=config.num_machines,
            seed=config.seed,
            size_distribution=config.size_distribution,
            load=config.load,
        )
        build_start = time.perf_counter()
        instance = generator.generate_large(num_jobs)
        build_s = time.perf_counter() - build_start
        engine = FlowTimeEngine(instance, dispatch=config.dispatch)
        for algorithm in config.algorithms:
            params = dict(config.algorithm_params.get(algorithm, {}))
            best_time = float("inf")
            events = 0
            for _ in range(max(1, config.repeats)):
                policy = make_policy(algorithm, **params)
                start = time.perf_counter()
                result = engine.run(policy)
                elapsed = time.perf_counter() - start
                best_time = min(best_time, elapsed)
                events = result.extras.get("events", 0)
            row = {
                "num_jobs": num_jobs,
                "algorithm": algorithm,
                "build_s": build_s,
                "wall_time_s": best_time,
                "events": events,
                "events_per_s": events / best_time if best_time > 0 else float("inf"),
                "jobs_per_s": num_jobs / best_time if best_time > 0 else float("inf"),
                # Process-wide high-water mark: monotone across rows, so only
                # increases between rows are attributable to the row itself.
                "peak_rss_mb": peak_rss_bytes() / 2**20,
            }
            table.add_row(row)
            raw["rows"].append(row)

    return ExperimentResult(
        experiment_id="E12",
        title="Scalability frontier",
        tables=[table],
        raw=raw,
    )
