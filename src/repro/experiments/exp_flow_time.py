"""E1 — Theorem 1: flow-time competitiveness and rejection budget.

For every workload and every ``epsilon`` in the sweep, run the Section 2
algorithm and report:

* the measured total flow time and the fraction of rejected jobs (Theorem 1
  promises at most ``2 * epsilon``);
* the competitive-ratio bracket (cost over the certified lower bound, cost
  over the best feasible offline reference) next to the paper's guarantee
  ``2((1+eps)/eps)^2``;
* the rejection-free greedy and FCFS baselines on the same instances, to show
  the gap rejection closes on bursty/adversarial workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.competitive import flow_time_competitive_estimate
from repro.analysis.reporting import ExperimentTable
from repro.baselines.offline import offline_list_schedule
from repro.core.bounds import flow_time_competitive_ratio, flow_time_rejection_budget
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import rejected_fraction, total_flow_time
from repro.simulation.validation import validate_result
from repro.solvers import make_policy
from repro.workloads.suites import standard_suites


@dataclass
class FlowTimeExperimentConfig:
    """Sweep parameters of experiment E1."""

    scale: str = "small"
    epsilons: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75)
    workloads: tuple[str, ...] = ("poisson-pareto", "bursty-bimodal", "overload-burst")
    include_lp_bound: bool = False
    include_baselines: bool = True
    seed: int = 2018
    validate: bool = True


COLUMNS = (
    "workload",
    "algorithm",
    "epsilon",
    "flow_time",
    "rejected_fraction",
    "budget_2eps",
    "ratio_vs_lb",
    "ratio_vs_ref",
    "paper_bound",
)


def run(config: FlowTimeExperimentConfig) -> ExperimentResult:
    """Run experiment E1 and return its result table."""
    suites = standard_suites(scale=config.scale, seed=config.seed)
    table = ExperimentTable(
        title="E1: total flow time with rejections (Theorem 1)", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for workload in config.workloads:
        instance = suites["flow"].build(workload)
        lower_bound = best_flow_time_lower_bound(instance, include_lp=config.include_lp_bound)
        reference = offline_list_schedule(instance)
        engine = FlowTimeEngine(instance)

        candidates = []
        for epsilon in config.epsilons:
            candidates.append((make_policy("rejection-flow", epsilon=epsilon), epsilon))
        if config.include_baselines:
            candidates.append((make_policy("greedy"), None))
            candidates.append((make_policy("fcfs"), None))

        results = []
        for scheduler, epsilon in candidates:
            result = engine.run(scheduler)
            if config.validate:
                validate_result(result)
            results.append((scheduler, epsilon, result))

        # A feasible schedule of *all* jobs is also a reference; baselines that
        # complete everything tighten the reference side of the bracket.
        feasible_costs = [
            total_flow_time(res) for _, eps, res in results if rejected_fraction(res) == 0.0
        ]
        reference = min([reference, *feasible_costs]) if feasible_costs else reference

        for scheduler, epsilon, result in results:
            estimate = flow_time_competitive_estimate(
                result,
                lower_bound=lower_bound,
                reference_cost=reference,
                theoretical_bound=(
                    flow_time_competitive_ratio(epsilon) if epsilon is not None else None
                ),
            )
            row = {
                "workload": workload,
                "algorithm": scheduler.name,
                "epsilon": epsilon if epsilon is not None else "-",
                "flow_time": estimate.cost,
                "rejected_fraction": rejected_fraction(result),
                "budget_2eps": (
                    flow_time_rejection_budget(epsilon) if epsilon is not None else "-"
                ),
                "ratio_vs_lb": estimate.ratio_vs_lower_bound,
                "ratio_vs_ref": estimate.ratio_vs_reference,
                "paper_bound": (
                    flow_time_competitive_ratio(epsilon) if epsilon is not None else "-"
                ),
            }
            table.add_row(row)
            raw["rows"].append(
                {**row, "within_bound": estimate.within_theoretical_bound}
            )

    table.add_note(
        "ratio_vs_lb over-estimates the true competitive ratio (certified lower bound); "
        "ratio_vs_ref under-estimates it (feasible offline reference)."
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Theorem 1: flow time with rejections",
        tables=[table],
        raw=raw,
    )
