"""E6 — rejection alone vs speed augmentation plus rejection.

The central question of the paper: is rejection alone as powerful as the
speed-augmentation-plus-rejection model of the ESA'16 algorithm [5]?  On the
same workloads the experiment runs

* the Theorem 1 algorithm (rejection only, unit-speed machines), and
* the speed-augmented baseline (``(1+eps_s)``-fast machines, Rule-1 rejection),

and reports both flow times normalised by the same certified lower bound,
next to the respective guarantees ``2((1+eps)/eps)^2`` and ``1/(eps_s*eps_r)``.
The speed-augmented rows are measured on faster hardware, so matching (or
beating) them with unit-speed machines is the qualitative claim of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.baselines.speed_augmentation import run_with_speed_augmentation
from repro.core.bounds import (
    flow_time_competitive_ratio,
    speed_augmentation_competitive_ratio,
)
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import rejected_fraction, total_flow_time
from repro.solvers import make_policy
from repro.workloads.suites import standard_suites


@dataclass
class SpeedVsRejectionExperimentConfig:
    """Sweep parameters of experiment E6."""

    scale: str = "small"
    epsilons: tuple[float, ...] = (0.25, 0.5)
    workloads: tuple[str, ...] = ("poisson-pareto", "bursty-bimodal")
    seed: int = 2018


COLUMNS = (
    "workload",
    "epsilon",
    "model",
    "machine_speed",
    "flow_time",
    "rejected_fraction",
    "ratio_vs_lb",
    "guarantee",
)


def run(config: SpeedVsRejectionExperimentConfig) -> ExperimentResult:
    """Run experiment E6 and return its result table."""
    suites = standard_suites(scale=config.scale, seed=config.seed)
    table = ExperimentTable(
        title="E6: rejection only vs speed augmentation + rejection", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for workload in config.workloads:
        instance = suites["flow"].build(workload)
        lower_bound = best_flow_time_lower_bound(instance)
        engine = FlowTimeEngine(instance)

        for epsilon in config.epsilons:
            rejection_only = engine.run(make_policy("rejection-flow", epsilon=epsilon))
            augmented = run_with_speed_augmentation(
                instance, epsilon_speed=epsilon, epsilon_reject=epsilon
            )
            rows = [
                (
                    "rejection-only (Thm 1)",
                    1.0,
                    total_flow_time(rejection_only),
                    rejected_fraction(rejection_only),
                    flow_time_competitive_ratio(epsilon),
                ),
                (
                    "speed+rejection (ESA'16)",
                    1.0 + epsilon,
                    total_flow_time(augmented),
                    rejected_fraction(augmented),
                    speed_augmentation_competitive_ratio(epsilon, epsilon),
                ),
            ]
            for model, speed, flow, rejected, guarantee in rows:
                row = {
                    "workload": workload,
                    "epsilon": epsilon,
                    "model": model,
                    "machine_speed": speed,
                    "flow_time": flow,
                    "rejected_fraction": rejected,
                    "ratio_vs_lb": flow / lower_bound if lower_bound > 0 else float("inf"),
                    "guarantee": guarantee,
                }
                table.add_row(row)
                raw["rows"].append(row)

    table.add_note(
        "the speed+rejection rows run on (1+eps)-fast machines; rejection-only matching "
        "them on unit-speed machines is the qualitative content of Theorem 1."
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Rejection vs resource augmentation",
        tables=[table],
        raw=raw,
    )
