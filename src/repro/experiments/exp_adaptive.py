"""E17 — adaptive meta-scheduling: regret under drifting workload regimes.

E14 sweeps every streaming solver over *stationary* scenario shapes; E17 asks
the question the adaptive subsystem (:mod:`repro.adaptive`) exists to answer:
when the workload regime **drifts mid-trace** — a diurnal cycle interrupted by
a flash crowd, a gentle ramp handing over to a near-critical heavy tail — can
the algorithm-switching meta-scheduler track the regime and stay close to the
**best fixed policy in hindsight**, without knowing the drift schedule?

Each drifting scenario is solved by every *fixed* candidate policy and by the
``meta`` solver under each configured switch policy (threshold and
bandit-style by default).  Per cell the experiment reports:

* the objective value and its **ratio vs the best fixed** candidate on that
  scenario (the hindsight benchmark: 1.0 = matched the best fixed policy);
* the **regret** — ``objective - best_fixed_objective`` — the standard
  drifting-bandit yardstick, in objective units;
* the meta-scheduler's **switch count** and switch trace (from
  ``SolveOutcome.extras``), plus the deterministic event count and, only when
  ``measure_throughput=True``, wall-clock events/s (off by default so campaign
  artifacts stay byte-reproducible).

The headline claim the nightly grid re-checks: on every drifting scenario the
meta-scheduler's objective is strictly below the *worst* fixed candidate's,
and on at least one scenario it beats *every* fixed candidate — adaptivity
pays exactly when no single policy is right for the whole trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.adaptive.solver import DEFAULT_CANDIDATES
from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.service.session import open_session
from repro.simulation.validation import validate_result
from repro.solvers import get_solver, solve
from repro.workloads.scenarios import get_scenario

#: The drifting-regime scenarios E17 evaluates by default.
DRIFT_SCENARIOS = ("drift-diurnal-flash", "drift-ramp-heavytail")


@dataclass
class AdaptiveConfig:
    """Sweep parameters of experiment E17."""

    scenarios: tuple[str, ...] = DRIFT_SCENARIOS
    #: Fixed candidate policies; also the meta-scheduler's candidate set.
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES
    #: Switch-policy families to evaluate the meta solver under.
    meta_policies: tuple[str, ...] = ("threshold", "bandit")
    window: int = 64
    cooldown: int = 32
    #: Rejection budget shared by every policy that takes one (fixed runs and
    #: the meta solver's sub-policies alike), so the hindsight comparison is
    #: budget-fair.
    epsilon: float = 0.25
    num_jobs: int = 300
    num_machines: int = 4
    alpha: float = 3.0
    seed: int = 2018
    #: ``session`` streams chunks through a SchedulerSession; ``batch``
    #: materialises an Instance and calls repro.solve() (byte-identical).
    ingest: str = "session"
    #: Wall-clock events/s per cell; leave off for byte-reproducible artifacts.
    measure_throughput: bool = False
    validate: bool = True


COLUMNS = (
    "scenario",
    "policy",
    "kind",
    "objective_value",
    "ratio_vs_best_fixed",
    "regret",
    "switches",
    "rejected_fraction",
    "events",
    "events_per_s",
)


def _run_cell(config: AdaptiveConfig, scenario_name: str, algorithm: str, params: dict):
    """One (scenario × policy) cell -> (SolveOutcome, elapsed seconds)."""
    scenario = get_scenario(scenario_name)
    label = f"{scenario_name}(m={config.num_machines},n={config.num_jobs})"
    start = time.perf_counter()
    if config.ingest == "session":
        session = open_session(
            algorithm,
            config.num_machines,
            alpha=config.alpha,
            name=label,
            retain_events=False,
            **params,
        )
        # Ingest-then-finalize (no mid-stream polls): the pattern the session
        # guarantees byte-identical to the batch facade.
        for chunk in scenario.job_chunks(
            config.num_jobs, config.num_machines, seed=config.seed
        ):
            session.submit_many(chunk)
        outcome = session.finalize()
    elif config.ingest == "batch":
        instance = scenario.instance(
            config.num_jobs, config.num_machines, seed=config.seed,
            alpha=config.alpha, name=label,
        )
        outcome = solve(instance, algorithm, **params)
    else:
        raise ValueError(f"unknown ingest mode {config.ingest!r} (session/batch)")
    elapsed = time.perf_counter() - start
    if config.validate and outcome.result is not None:
        validate_result(outcome.result)
    return outcome, elapsed


def run(config: AdaptiveConfig) -> ExperimentResult:
    """Run experiment E17 and return the drifting-regret table."""
    runs: list[tuple[str, str, str, dict]] = []
    for candidate in config.candidates:
        spec = get_solver(candidate)
        params = (
            {"epsilon": config.epsilon} if "epsilon" in spec.param_specs() else {}
        )
        runs.append((f"fixed:{candidate}", "fixed", candidate, params))
    for family in config.meta_policies:
        runs.append(
            (
                f"meta:{family}",
                "meta",
                "meta",
                {
                    "candidates": config.candidates,
                    "window": config.window,
                    "policy": family,
                    "cooldown": config.cooldown,
                    "epsilon": config.epsilon,
                },
            )
        )

    cells: list[dict] = []
    for scenario_name in config.scenarios:
        for policy_label, kind, algorithm, params in runs:
            outcome, elapsed = _run_cell(config, scenario_name, algorithm, params)
            events = outcome.result.extras.get("events", 0) if outcome.result else 0
            cells.append(
                {
                    "scenario": scenario_name,
                    "policy": policy_label,
                    "kind": kind,
                    "objective_value": outcome.objective_value,
                    "rejected_fraction": outcome.rejected_fraction,
                    "switches": outcome.extras.get("meta_switches", 0),
                    "switch_trace": outcome.extras.get("meta_switch_trace", ""),
                    "events": events,
                    "elapsed_s": elapsed,
                }
            )

    # Hindsight benchmark: the best (and worst) fixed candidate per scenario.
    best_fixed: dict[str, float] = {}
    worst_fixed: dict[str, float] = {}
    for cell in cells:
        if cell["kind"] != "fixed":
            continue
        name, value = cell["scenario"], cell["objective_value"]
        if name not in best_fixed or value < best_fixed[name]:
            best_fixed[name] = value
        if name not in worst_fixed or value > worst_fixed[name]:
            worst_fixed[name] = value
    for cell in cells:
        floor = best_fixed.get(cell["scenario"])
        cell["ratio_vs_best_fixed"] = (
            cell["objective_value"] / floor if floor else float("nan")
        )
        cell["regret"] = (
            cell["objective_value"] - floor if floor is not None else float("nan")
        )

    # Per-scenario adaptivity summary for the raw artifact (and the nightly
    # headline check): did each meta policy stay under the worst fixed
    # candidate, and did it beat every fixed candidate outright?
    summary: list[dict] = []
    for scenario_name in config.scenarios:
        for cell in cells:
            if cell["scenario"] != scenario_name or cell["kind"] != "meta":
                continue
            value = cell["objective_value"]
            summary.append(
                {
                    "scenario": scenario_name,
                    "policy": cell["policy"],
                    "objective_value": value,
                    "best_fixed": best_fixed.get(scenario_name),
                    "worst_fixed": worst_fixed.get(scenario_name),
                    "beats_worst_fixed": value < worst_fixed.get(scenario_name, value),
                    "beats_all_fixed": value < best_fixed.get(scenario_name, value),
                    "switches": cell["switches"],
                }
            )

    table = ExperimentTable(
        title="E17: adaptive meta-scheduling regret under drifting regimes",
        columns=COLUMNS,
    )
    raw: dict = {
        "scenarios": list(config.scenarios),
        "candidates": list(config.candidates),
        "meta_policies": list(config.meta_policies),
        "ingest": config.ingest,
        "rows": [],
        "summary": summary,
    }
    for cell in cells:
        events_per_s = (
            cell["events"] / cell["elapsed_s"]
            if config.measure_throughput and cell["elapsed_s"] > 0
            else ""
        )
        table.add_row({**{c: cell.get(c, "") for c in COLUMNS},
                       "events_per_s": events_per_s})
        row = {k: v for k, v in cell.items() if k != "elapsed_s"}
        if config.measure_throughput:
            row["events_per_s"] = events_per_s
        raw["rows"].append(row)

    table.add_note(
        "ratio_vs_best_fixed and regret compare against the best *fixed* "
        "candidate in hindsight on the same scenario (ratio 1.0 / regret 0 = "
        "matched it; below = adaptivity beat every fixed policy). switches "
        "counts the meta-scheduler's hot algorithm switches. Wall-clock "
        "events/s appears only with measure_throughput=True so campaign "
        "artifacts stay byte-reproducible."
    )
    return ExperimentResult(
        experiment_id="E17",
        title="adaptive meta-scheduling regret under drifting workload regimes",
        tables=[table],
        raw=raw,
    )
