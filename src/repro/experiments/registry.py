"""Experiment registry: ids, descriptions and a uniform ``run_experiment`` entry point."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.reporting import ExperimentTable, render_report
from repro.exceptions import InvalidParameterError


@dataclass
class ExperimentResult:
    """Uniform result bundle returned by every experiment."""

    experiment_id: str
    title: str
    tables: list[ExperimentTable] = field(default_factory=list)
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        """Render all tables of the experiment as one report string."""
        return render_report(self.tables, header=f"# {self.experiment_id}: {self.title}")


#: Experiment id -> (module path, config class name, one-line description).
EXPERIMENTS: dict[str, tuple[str, str, str]] = {
    "E1": (
        "repro.experiments.exp_flow_time",
        "FlowTimeExperimentConfig",
        "Theorem 1: competitive ratio and rejection budget of the flow-time algorithm",
    ),
    "E2": (
        "repro.experiments.exp_immediate_rejection",
        "ImmediateRejectionExperimentConfig",
        "Lemma 1: immediate rejection degrades like sqrt(Delta); Theorem 1 stays flat",
    ),
    "E3": (
        "repro.experiments.exp_energy_flow",
        "EnergyFlowExperimentConfig",
        "Theorem 2: weighted flow time plus energy, rejected weight budget",
    ),
    "E4": (
        "repro.experiments.exp_energy_min",
        "EnergyMinExperimentConfig",
        "Theorem 3: energy minimisation with deadlines vs alpha^alpha",
    ),
    "E5": (
        "repro.experiments.exp_energy_lower_bound",
        "EnergyLowerBoundExperimentConfig",
        "Lemma 2: the adaptive adversary forces Omega((alpha/9)^alpha)",
    ),
    "E6": (
        "repro.experiments.exp_speed_vs_rejection",
        "SpeedVsRejectionExperimentConfig",
        "Rejection only (Theorem 1) vs speed augmentation + rejection (ESA'16)",
    ),
    "E7": (
        "repro.experiments.exp_dual_fitting",
        "DualFittingExperimentConfig",
        "Lemma 4 / Lemma 6: empirical dual feasibility and dual objective strength",
    ),
    "E8": (
        "repro.experiments.exp_scalability",
        "ScalabilityExperimentConfig",
        "Simulator and algorithm scalability (events per second)",
    ),
    "E9": (
        "repro.experiments.exp_ablation",
        "AblationExperimentConfig",
        "Ablation of the two rejection rules of the Theorem 1 algorithm",
    ),
}


def available_experiments() -> dict[str, str]:
    """Mapping of experiment id to its one-line description."""
    return {exp_id: spec[2] for exp_id, spec in EXPERIMENTS.items()}


def run_experiment(experiment_id: str, **config_overrides) -> ExperimentResult:
    """Run an experiment by id with optional config overrides.

    ``config_overrides`` are passed to the experiment's config dataclass, so
    callers can scale sweeps up or down, e.g.
    ``run_experiment("E1", epsilons=(0.25, 0.5), num_jobs=200)``.
    """
    spec = EXPERIMENTS.get(experiment_id.upper())
    if spec is None:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    module_path, config_name, _ = spec
    module = importlib.import_module(module_path)
    config_cls = getattr(module, config_name)
    run: Callable = getattr(module, "run")
    return run(config_cls(**config_overrides))
