"""Experiment registry: ids, descriptions and uniform run entry points.

Every experiment module exposes a ``*Config`` dataclass plus ``run(config)``.
The registry maps experiment ids onto those modules and offers three layers
of entry point, from most to least convenient:

* :func:`run_experiment` — build a config from keyword overrides and run it;
* :class:`ExperimentRunUnit` — a picklable ``(experiment_id, overrides)``
  bundle whose :meth:`~ExperimentRunUnit.run` does the same; this is what the
  campaign runner ships to worker processes;
* :func:`make_config` / :func:`run_config` — the underlying pieces, for
  callers that want to inspect or mutate the config before running.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.analysis.reporting import ExperimentTable, render_report
from repro.exceptions import InvalidParameterError
from repro.utils.serialization import tuplify


@dataclass
class ExperimentResult:
    """Uniform result bundle returned by every experiment."""

    experiment_id: str
    title: str
    tables: list[ExperimentTable] = field(default_factory=list)
    raw: dict = field(default_factory=dict)

    def render(self) -> str:
        """Render all tables of the experiment as one report string."""
        return render_report(self.tables, header=f"# {self.experiment_id}: {self.title}")


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry tying an experiment id to its module and config class."""

    experiment_id: str
    module_path: str
    config_name: str
    description: str

    def load(self) -> tuple[type, Callable]:
        """Import the experiment module and return ``(config_cls, run)``."""
        module = importlib.import_module(self.module_path)
        return getattr(module, self.config_name), getattr(module, "run")

    def config_fields(self) -> dict[str, dataclasses.Field]:
        """The config dataclass fields, keyed by name."""
        config_cls, _ = self.load()
        return {f.name: f for f in dataclasses.fields(config_cls)}

    def accepts_seed(self) -> bool:
        """Whether the experiment's config has a ``seed`` knob."""
        return "seed" in self.config_fields()


#: Experiment id -> spec (module path, config class name, one-line description).
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "E1",
            "repro.experiments.exp_flow_time",
            "FlowTimeExperimentConfig",
            "Theorem 1: competitive ratio and rejection budget of the flow-time algorithm",
        ),
        ExperimentSpec(
            "E2",
            "repro.experiments.exp_immediate_rejection",
            "ImmediateRejectionExperimentConfig",
            "Lemma 1: immediate rejection degrades like sqrt(Delta); Theorem 1 stays flat",
        ),
        ExperimentSpec(
            "E3",
            "repro.experiments.exp_energy_flow",
            "EnergyFlowExperimentConfig",
            "Theorem 2: weighted flow time plus energy, rejected weight budget",
        ),
        ExperimentSpec(
            "E4",
            "repro.experiments.exp_energy_min",
            "EnergyMinExperimentConfig",
            "Theorem 3: energy minimisation with deadlines vs alpha^alpha",
        ),
        ExperimentSpec(
            "E5",
            "repro.experiments.exp_energy_lower_bound",
            "EnergyLowerBoundExperimentConfig",
            "Lemma 2: the adaptive adversary forces Omega((alpha/9)^alpha)",
        ),
        ExperimentSpec(
            "E6",
            "repro.experiments.exp_speed_vs_rejection",
            "SpeedVsRejectionExperimentConfig",
            "Rejection only (Theorem 1) vs speed augmentation + rejection (ESA'16)",
        ),
        ExperimentSpec(
            "E7",
            "repro.experiments.exp_dual_fitting",
            "DualFittingExperimentConfig",
            "Lemma 4 / Lemma 6: empirical dual feasibility and dual objective strength",
        ),
        ExperimentSpec(
            "E8",
            "repro.experiments.exp_scalability",
            "ScalabilityExperimentConfig",
            "Simulator and algorithm scalability (events per second)",
        ),
        ExperimentSpec(
            "E9",
            "repro.experiments.exp_ablation",
            "AblationExperimentConfig",
            "Ablation of the two rejection rules of the Theorem 1 algorithm",
        ),
        ExperimentSpec(
            "E10",
            "repro.experiments.exp_solver_compare",
            "SolverCompareConfig",
            "Algorithm sweep through the unified solver registry (repro.solve)",
        ),
        ExperimentSpec(
            "E12",
            "repro.experiments.exp_scalability_frontier",
            "ScalabilityFrontierConfig",
            "Scalability frontier: chunked generators + indexed dispatch up to 100k jobs",
        ),
        ExperimentSpec(
            "E14",
            "repro.experiments.exp_robustness",
            "RobustnessConfig",
            "Robustness frontier: streaming solvers across the heavy-traffic scenario catalog",
        ),
        ExperimentSpec(
            "E15",
            "repro.experiments.exp_service_capacity",
            "ServiceCapacityConfig",
            "Service capacity: concurrent sessions x throughput x decision latency",
        ),
        ExperimentSpec(
            "E16",
            "repro.experiments.exp_partition_cost",
            "PartitionCostConfig",
            "Partition cost: k-sharded parallel solving vs the single coordinator",
        ),
        ExperimentSpec(
            "E17",
            "repro.experiments.exp_adaptive",
            "AdaptiveConfig",
            "Adaptive meta-scheduling regret under drifting workload regimes",
        ),
    )
}


def available_experiments() -> dict[str, str]:
    """Mapping of experiment id to its one-line description."""
    return {exp_id: spec.description for exp_id, spec in EXPERIMENTS.items()}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up the spec for ``experiment_id`` (case-insensitive)."""
    spec = EXPERIMENTS.get(experiment_id.upper())
    if spec is None:
        raise InvalidParameterError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return spec


def make_config(experiment_id: str, **overrides):
    """Instantiate an experiment's config dataclass from keyword overrides.

    Sweep knobs are tuples in every config; overrides that arrive as lists
    (e.g. after a JSON round trip through the artifact store) are coerced back
    to tuples so configs hash and compare consistently.
    """
    spec = get_spec(experiment_id)
    config_cls, _ = spec.load()
    fields = spec.config_fields()
    unknown = set(overrides) - set(fields)
    if unknown:
        raise InvalidParameterError(
            f"unknown config fields for {spec.experiment_id}: {sorted(unknown)}; "
            f"available: {sorted(fields)}"
        )
    coerced: dict[str, Any] = {}
    for name, value in overrides.items():
        if isinstance(value, list) and isinstance(fields[name].default, tuple):
            value = tuplify(value)
        coerced[name] = value
    return config_cls(**coerced)


def run_config(experiment_id: str, config) -> ExperimentResult:
    """Run an experiment on an already-built config instance."""
    _, run = get_spec(experiment_id).load()
    return run(config)


def run_experiment(experiment_id: str, **config_overrides) -> ExperimentResult:
    """Run an experiment by id with optional config overrides.

    ``config_overrides`` are passed to the experiment's config dataclass, so
    callers can scale sweeps up or down, e.g.
    ``run_experiment("E1", epsilons=(0.25, 0.5), num_jobs=200)``.
    """
    return run_config(experiment_id, make_config(experiment_id, **config_overrides))


@dataclass(frozen=True)
class ExperimentRunUnit:
    """A picklable, self-contained unit of experiment work.

    Plain data only (an experiment id plus a JSON-able overrides mapping), so
    instances cross process boundaries and hash stably — the campaign runner
    ships these to worker processes and keys its artifact store off them.
    """

    experiment_id: str
    overrides: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, experiment_id: str, overrides: Mapping[str, Any] | None = None
               ) -> "ExperimentRunUnit":
        """Build a unit, normalising the overrides mapping to sorted hashable
        items (list values from JSON round trips become tuples)."""
        items = tuple(
            sorted((name, tuplify(value)) for name, value in (overrides or {}).items())
        )
        return cls(experiment_id=experiment_id.upper(), overrides=items)

    @property
    def overrides_dict(self) -> dict[str, Any]:
        """The overrides as a plain dict."""
        return dict(self.overrides)

    def config(self):
        """Instantiate the experiment's config dataclass for this unit."""
        return make_config(self.experiment_id, **self.overrides_dict)

    def run(self) -> ExperimentResult:
        """Execute the unit and return the experiment result."""
        return run_config(self.experiment_id, self.config())
