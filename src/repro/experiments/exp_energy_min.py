"""E4 — Theorem 3: energy minimisation with deadlines vs ``alpha^alpha``.

Sweeps the power exponent ``alpha`` and the deadline slack over Section 4
workloads and reports, for the configuration-LP greedy:

* the measured energy next to the certified lower bound (per-job convexity,
  plus YDS on single-machine instances) and the ``alpha^alpha`` guarantee;
* the AVR online reference on the same instances;
* the discretised offline optimum (brute force) on tiny instances, to show
  how loose the certified bound is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.baselines.avr import average_rate_energy
from repro.baselines.offline import brute_force_optimal_energy
from repro.core.bounds import energy_min_competitive_ratio
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.energy_bounds import best_energy_lower_bound
from repro.workloads.generators import DeadlineInstanceGenerator


@dataclass
class EnergyMinExperimentConfig:
    """Sweep parameters of experiment E4."""

    alphas: tuple[float, ...] = (1.5, 2.0, 3.0)
    slacks: tuple[float, ...] = (2.0, 4.0)
    num_jobs: int = 25
    num_machines: int = 2
    slot_length: float = 1.0
    seed: int = 2018
    include_brute_force: bool = False
    brute_force_jobs: int = 5


COLUMNS = (
    "alpha",
    "slack",
    "algorithm",
    "energy",
    "lower_bound",
    "ratio_vs_lb",
    "paper_bound",
)


def run(config: EnergyMinExperimentConfig) -> ExperimentResult:
    """Run experiment E4 and return its result table."""
    table = ExperimentTable(
        title="E4: non-preemptive energy minimisation (Theorem 3)", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for alpha in config.alphas:
        for slack in config.slacks:
            generator = DeadlineInstanceGenerator(
                num_machines=config.num_machines,
                slack=slack,
                alpha=alpha,
                seed=config.seed,
            )
            instance = generator.generate(config.num_jobs)
            lower_bound = best_energy_lower_bound(instance)
            paper_bound = energy_min_competitive_ratio(alpha)

            scheduler = ConfigLPEnergyScheduler(slot_length=config.slot_length)
            schedule = scheduler.schedule(instance)
            rows = [
                ("config-lp-greedy", schedule.total_energy),
                ("avr(reference)", average_rate_energy(instance)),
            ]

            if config.include_brute_force:
                tiny = instance.prefix(config.brute_force_jobs)
                tiny_lb = best_energy_lower_bound(tiny)
                tiny_greedy = scheduler.schedule(tiny).total_energy
                tiny_opt = brute_force_optimal_energy(
                    tiny, slot_length=config.slot_length, max_jobs=config.brute_force_jobs
                )
                raw.setdefault("brute_force", []).append(
                    {
                        "alpha": alpha,
                        "slack": slack,
                        "greedy": tiny_greedy,
                        "optimum": tiny_opt,
                        "lower_bound": tiny_lb,
                        "ratio_vs_opt": tiny_greedy / tiny_opt if tiny_opt > 0 else float("inf"),
                    }
                )

            for name, energy in rows:
                row = {
                    "alpha": alpha,
                    "slack": slack,
                    "algorithm": name,
                    "energy": energy,
                    "lower_bound": lower_bound,
                    "ratio_vs_lb": energy / lower_bound if lower_bound > 0 else float("inf"),
                    "paper_bound": paper_bound,
                }
                table.add_row(row)
                raw["rows"].append(row)

    table.add_note(
        "AVR is preemptive and may process jobs in parallel, so it is an optimistic "
        "reference, not a feasible competitor in the paper's model."
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 3: energy minimisation with deadlines",
        tables=[table],
        raw=raw,
    )
