"""E3 — Theorem 2: weighted flow time plus energy with weighted rejections.

Sweeps the power exponent ``alpha`` and the rejection parameter ``epsilon``
over weighted speed-scaling workloads and reports, for the Section 3
algorithm:

* the measured objective (weighted flow time + energy) next to the certified
  per-job convexity lower bound and the paper's
  ``O((1+1/eps)^{alpha/(alpha-1)})`` guarantee;
* the rejected weight fraction next to the ``epsilon`` budget of Theorem 2;
* the rejection-free variant and the preemptive HDF reference on the same
  instances for context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.baselines.hdf import HighestDensityFirstScheduler
from repro.core.bounds import energy_flow_competitive_ratio, energy_flow_rejection_budget
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.energy_bounds import per_job_flow_energy_lower_bound
from repro.simulation.metrics import flow_plus_energy, rejected_weight_fraction
from repro.simulation.speed_engine import SpeedScalingEngine
from repro.simulation.validation import validate_result
from repro.solvers import make_policy
from repro.workloads.generators import WeightedInstanceGenerator


@dataclass
class EnergyFlowExperimentConfig:
    """Sweep parameters of experiment E3."""

    alphas: tuple[float, ...] = (2.0, 2.5, 3.0)
    epsilons: tuple[float, ...] = (0.25, 0.5)
    num_jobs: int = 120
    num_machines: int = 3
    seed: int = 2018
    include_hdf_reference: bool = True
    validate: bool = True


COLUMNS = (
    "alpha",
    "algorithm",
    "epsilon",
    "objective",
    "rejected_weight_fraction",
    "budget_eps",
    "ratio_vs_lb",
    "paper_bound",
)


def run(config: EnergyFlowExperimentConfig) -> ExperimentResult:
    """Run experiment E3 and return its result table."""
    table = ExperimentTable(
        title="E3: weighted flow time plus energy (Theorem 2)", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for alpha in config.alphas:
        generator = WeightedInstanceGenerator(
            num_machines=config.num_machines, alpha=alpha, seed=config.seed
        )
        instance = generator.generate(config.num_jobs)
        lower_bound = per_job_flow_energy_lower_bound(instance)
        engine = SpeedScalingEngine(instance)

        runs: list[tuple[str, float | None, float, float]] = []
        for epsilon in config.epsilons:
            scheduler = make_policy("rejection-energy-flow", epsilon=epsilon)
            result = engine.run(scheduler)
            if config.validate:
                validate_result(result)
            runs.append(
                (scheduler.name, epsilon, flow_plus_energy(result), rejected_weight_fraction(result))
            )

        no_reject = make_policy("energy-flow-no-rejection")
        nr_result = engine.run(no_reject)
        if config.validate:
            validate_result(nr_result)
        runs.append((no_reject.name, None, flow_plus_energy(nr_result), 0.0))

        if config.include_hdf_reference:
            hdf = HighestDensityFirstScheduler()
            hdf_result = hdf.run(instance)
            runs.append((hdf.name, None, hdf_result.objective, 0.0))

        for name, epsilon, objective, rejected_weight in runs:
            bound = (
                energy_flow_competitive_ratio(epsilon, alpha) if epsilon is not None else None
            )
            row = {
                "alpha": alpha,
                "algorithm": name,
                "epsilon": epsilon if epsilon is not None else "-",
                "objective": objective,
                "rejected_weight_fraction": rejected_weight,
                "budget_eps": (
                    energy_flow_rejection_budget(epsilon) if epsilon is not None else "-"
                ),
                "ratio_vs_lb": objective / lower_bound if lower_bound > 0 else float("inf"),
                "paper_bound": bound if bound is not None else "-",
            }
            table.add_row(row)
            raw["rows"].append(row)

    table.add_note(
        "the per-job convexity lower bound ignores all interference, so ratio_vs_lb "
        "substantially over-estimates the true competitive ratio; the paper bound must "
        "still dominate it in order."
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Theorem 2: weighted flow time plus energy",
        tables=[table],
        raw=raw,
    )
