"""E5 — Lemma 2: the adaptive adversary against deterministic energy minimisation.

Plays the Lemma 2 game (the adversary nests each new job's window inside the
execution the algorithm just committed to) against the Section 4 greedy for a
sweep of ``alpha`` values and reports the forced ratio next to the paper's
``(alpha/9)^alpha`` lower bound and the ``alpha^alpha`` upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.core.bounds import energy_min_competitive_ratio, energy_min_lower_bound
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.experiments.registry import ExperimentResult
from repro.workloads.adversarial import Lemma2Adversary


@dataclass
class EnergyLowerBoundExperimentConfig:
    """Sweep parameters of experiment E5."""

    alphas: tuple[float, ...] = (2.0, 3.0, 4.0, 5.0)
    slot_length: float = 1.0


COLUMNS = (
    "alpha",
    "rounds",
    "algorithm_energy",
    "adversary_energy",
    "forced_ratio",
    "lemma2_bound",
    "theorem3_bound",
)


def run(config: EnergyLowerBoundExperimentConfig) -> ExperimentResult:
    """Run experiment E5 and return its result table."""
    table = ExperimentTable(
        title="E5: Lemma 2 adaptive adversary vs the Theorem 3 greedy", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for alpha in config.alphas:
        adversary = Lemma2Adversary(alpha=alpha, slot_length=config.slot_length)
        outcome = adversary.play(ConfigLPEnergyScheduler(slot_length=config.slot_length))
        row = {
            "alpha": alpha,
            "rounds": len(outcome.rounds),
            "algorithm_energy": outcome.algorithm_energy,
            "adversary_energy": outcome.adversary_energy,
            "forced_ratio": outcome.ratio,
            "lemma2_bound": energy_min_lower_bound(alpha),
            "theorem3_bound": energy_min_competitive_ratio(alpha),
        }
        table.add_row(row)
        raw["rows"].append(row)

    table.add_note(
        "Lemma 2 guarantees the forced ratio of the *worst* deterministic algorithm grows "
        "like (alpha/9)^alpha; the observed ratio of the greedy should grow with alpha and "
        "stay below alpha^alpha (Theorem 3)."
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Lemma 2: adaptive lower-bound construction",
        tables=[table],
        raw=raw,
    )
