"""E9 — ablation of the two rejection rules of the Theorem 1 algorithm.

Rule 1 (evict the running job when too many jobs pile up behind it) and
Rule 2 (periodically evict the largest pending job) play different roles in
the analysis: Rule 1 protects short jobs stuck behind a long running job,
Rule 2 replaces speed augmentation by keeping the queues short.  The ablation
runs the algorithm with each subset of rules on random and adversarial
workloads and reports flow time and rejection fractions, showing that both
rules are needed for the worst-case behaviour while random instances are
often fine with either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import max_flow_time, rejected_fraction, total_flow_time
from repro.solvers import make_policy
from repro.workloads.suites import standard_suites


@dataclass
class AblationExperimentConfig:
    """Sweep parameters of experiment E9."""

    scale: str = "small"
    epsilon: float = 0.25
    workloads: tuple[str, ...] = ("poisson-pareto", "overload-burst", "lemma1-L16")
    seed: int = 2018


COLUMNS = (
    "workload",
    "rules",
    "flow_time",
    "max_flow_time",
    "rejected_fraction",
    "ratio_vs_lb",
)

_VARIANTS = (
    ("both rules", True, True),
    ("rule 1 only", True, False),
    ("rule 2 only", False, True),
    ("no rejection", False, False),
)


def run(config: AblationExperimentConfig) -> ExperimentResult:
    """Run experiment E9 and return its result table."""
    suites = standard_suites(scale=config.scale, seed=config.seed)
    table = ExperimentTable(
        title=f"E9: rejection-rule ablation (epsilon={config.epsilon})", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for workload in config.workloads:
        instance = suites["flow"].build(workload)
        lower_bound = best_flow_time_lower_bound(instance)
        engine = FlowTimeEngine(instance)
        for label, rule1, rule2 in _VARIANTS:
            scheduler = make_policy(
                "rejection-flow",
                epsilon=config.epsilon, enable_rule1=rule1, enable_rule2=rule2,
            )
            result = engine.run(scheduler)
            flow = total_flow_time(result)
            row = {
                "workload": workload,
                "rules": label,
                "flow_time": flow,
                "max_flow_time": max_flow_time(result),
                "rejected_fraction": rejected_fraction(result),
                "ratio_vs_lb": flow / lower_bound if lower_bound > 0 else float("inf"),
            }
            table.add_row(row)
            raw["rows"].append(row)

    table.add_note(
        "with both rules disabled the scheduler is the rejection-free greedy; the paper's "
        "guarantee only applies to the 'both rules' rows."
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Rejection-rule ablation",
        tables=[table],
        raw=raw,
    )
