"""E14 — robustness frontier: streaming solvers × heavy-traffic scenario catalog.

E10 compares algorithms on one synthetic workload; E14 asks the *robustness*
question the ROADMAP's heavy-traffic north star implies: how does every
streaming-capable solver hold up across the named scenario catalog
(:mod:`repro.workloads.scenarios`) — diurnal cycles, flash crowds,
heavy-tailed Pareto service times, multi-tenant mixes, load ramps?

Each (scenario × algorithm) cell ingests the scenario's chunk stream through
a :class:`~repro.service.session.SchedulerSession` (``ingest="session"``, the
default — the trace-driven path ``repro serve`` uses; ``ingest="batch"``
materialises an instance and calls :func:`repro.solve`, which is
byte-identical) and reports:

* the objective value and its **ratio vs the best** solver of the same
  objective on that scenario (speed-scaling solvers optimise flow+energy, so
  ratios are grouped per objective to stay apples-to-apples);
* the rejection rate (count and weight fractions);
* the deterministic simulator event count — and, only when
  ``measure_throughput=True``, wall-clock events/s.  Throughput is **off by
  default** so campaign artifacts stay byte-reproducible (the small/medium
  grids and the nightly byte-stability re-run rely on this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.service.session import open_session, streaming_algorithms
from repro.simulation.validation import validate_result
from repro.solvers import get_solver, solve
from repro.workloads.scenarios import SCENARIOS, get_scenario

#: All catalog scenarios, in reporting order (the default sweep).
ALL_SCENARIOS = tuple(SCENARIOS)


@dataclass
class RobustnessConfig:
    """Sweep parameters of experiment E14."""

    scenarios: tuple[str, ...] = ALL_SCENARIOS
    #: Empty tuple = every solver with ``supports_streaming``.
    algorithms: tuple[str, ...] = ()
    num_jobs: int = 300
    num_machines: int = 4
    epsilon: float = 0.5
    alpha: float = 3.0
    seed: int = 2018
    #: ``session`` streams chunks through a SchedulerSession; ``batch``
    #: materialises an Instance and calls repro.solve() (byte-identical).
    ingest: str = "session"
    #: Wall-clock events/s per cell; leave off for byte-reproducible artifacts.
    measure_throughput: bool = False
    validate: bool = True


COLUMNS = (
    "scenario",
    "algorithm",
    "model",
    "objective",
    "objective_value",
    "ratio_vs_best",
    "rejected_fraction",
    "rejected_weight_fraction",
    "events",
    "events_per_s",
)


def _run_cell(config: RobustnessConfig, scenario_name: str, algorithm: str):
    """One (scenario × algorithm) cell -> (SolveOutcome, elapsed seconds)."""
    spec = get_solver(algorithm)
    params = {"epsilon": config.epsilon} if "epsilon" in spec.param_specs() else {}
    scenario = get_scenario(scenario_name)
    label = f"{scenario_name}(m={config.num_machines},n={config.num_jobs})"
    start = time.perf_counter()
    if config.ingest == "session":
        session = open_session(
            algorithm,
            config.num_machines,
            alpha=config.alpha,
            name=label,
            retain_events=False,
            **params,
        )
        # Ingest-then-finalize (no mid-stream polls): the pattern the session
        # guarantees byte-identical to the batch facade.
        for chunk in scenario.job_chunks(
            config.num_jobs, config.num_machines, seed=config.seed
        ):
            session.submit_many(chunk)
        outcome = session.finalize()
    elif config.ingest == "batch":
        instance = scenario.instance(
            config.num_jobs, config.num_machines, seed=config.seed,
            alpha=config.alpha, name=label,
        )
        outcome = solve(instance, algorithm, **params)
    else:
        raise ValueError(f"unknown ingest mode {config.ingest!r} (session/batch)")
    elapsed = time.perf_counter() - start
    if config.validate and outcome.result is not None:
        validate_result(outcome.result)
    return outcome, elapsed


def run(config: RobustnessConfig) -> ExperimentResult:
    """Run experiment E14 and return the robustness-frontier table."""
    algorithms = tuple(config.algorithms) or tuple(streaming_algorithms())
    cells: list[dict] = []
    for scenario_name in config.scenarios:
        for algorithm in algorithms:
            outcome, elapsed = _run_cell(config, scenario_name, algorithm)
            events = outcome.result.extras.get("events", 0) if outcome.result else 0
            cells.append(
                {
                    "scenario": scenario_name,
                    "algorithm": algorithm,
                    "model": outcome.model,
                    "objective": outcome.objective,
                    "objective_value": outcome.objective_value,
                    "rejected_fraction": outcome.rejected_fraction,
                    "rejected_weight_fraction": outcome.rejected_weight_fraction,
                    "events": events,
                    "elapsed_s": elapsed,
                }
            )

    # Ratio vs the best solver of the same objective on the same scenario.
    best: dict[tuple[str, str], float] = {}
    for cell in cells:
        key = (cell["scenario"], cell["objective"])
        value = cell["objective_value"]
        if value > 0 and (key not in best or value < best[key]):
            best[key] = value
    for cell in cells:
        floor = best.get((cell["scenario"], cell["objective"]))
        cell["ratio_vs_best"] = (
            cell["objective_value"] / floor if floor else float("nan")
        )

    table = ExperimentTable(
        title="E14: robustness frontier (streaming solvers x scenario catalog)",
        columns=COLUMNS,
    )
    raw: dict = {
        "scenarios": list(config.scenarios),
        "algorithms": list(algorithms),
        "ingest": config.ingest,
        "rows": [],
    }
    for cell in cells:
        events_per_s = (
            cell["events"] / cell["elapsed_s"]
            if config.measure_throughput and cell["elapsed_s"] > 0
            else ""
        )
        table.add_row({**{c: cell.get(c, "") for c in COLUMNS},
                       "events_per_s": events_per_s})
        row = {k: v for k, v in cell.items() if k != "elapsed_s"}
        if config.measure_throughput:
            row["events_per_s"] = events_per_s
        raw["rows"].append(row)

    table.add_note(
        "ratio_vs_best compares solvers sharing an objective on the same scenario "
        "(1.0 = best); events is the deterministic simulator event count. "
        "Wall-clock events/s appears only with measure_throughput=True so "
        "campaign artifacts stay byte-reproducible."
    )
    return ExperimentResult(
        experiment_id="E14",
        title="robustness frontier across the heavy-traffic scenario catalog",
        tables=[table],
        raw=raw,
    )
