"""E8 — scalability of the simulator and of the Theorem 1 algorithm.

Measures wall-clock time and event throughput of the flow-time engine as the
number of jobs and machines grows, for the Theorem 1 scheduler and the greedy
baseline.  This is the reproduction's "systems" table: it documents the scale
the rest of the experiments can afford and how the dispatching cost (which is
``O(queue length)`` per arrival) behaves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.simulation.engine import FlowTimeEngine
from repro.solvers import make_policy
from repro.workloads.generators import InstanceGenerator


@dataclass
class ScalabilityExperimentConfig:
    """Sweep parameters of experiment E8."""

    job_counts: tuple[int, ...] = (200, 1000, 4000)
    machine_counts: tuple[int, ...] = (2, 8)
    epsilon: float = 0.5
    seed: int = 2018
    repeats: int = 1


COLUMNS = (
    "num_jobs",
    "num_machines",
    "algorithm",
    "wall_time_s",
    "events",
    "events_per_s",
    "jobs_per_s",
)


def run(config: ScalabilityExperimentConfig) -> ExperimentResult:
    """Run experiment E8 and return its result table."""
    table = ExperimentTable(title="E8: simulator and algorithm scalability", columns=COLUMNS)
    raw: dict = {"rows": []}

    for num_machines in config.machine_counts:
        for num_jobs in config.job_counts:
            instance = InstanceGenerator(
                num_machines=num_machines, seed=config.seed, size_distribution="exponential"
            ).generate(num_jobs)
            engine = FlowTimeEngine(instance)
            for scheduler in (
                make_policy("rejection-flow", epsilon=config.epsilon),
                make_policy("greedy"),
            ):
                best_time = float("inf")
                events = 0
                for _ in range(max(1, config.repeats)):
                    start = time.perf_counter()
                    result = engine.run(scheduler)
                    elapsed = time.perf_counter() - start
                    best_time = min(best_time, elapsed)
                    events = result.extras.get("events", 0)
                row = {
                    "num_jobs": num_jobs,
                    "num_machines": num_machines,
                    "algorithm": scheduler.name,
                    "wall_time_s": best_time,
                    "events": events,
                    "events_per_s": events / best_time if best_time > 0 else float("inf"),
                    "jobs_per_s": num_jobs / best_time if best_time > 0 else float("inf"),
                }
                table.add_row(row)
                raw["rows"].append(row)

    return ExperimentResult(
        experiment_id="E8",
        title="Simulator scalability",
        tables=[table],
        raw=raw,
    )
