"""E2 — Lemma 1: immediate rejection degrades with Delta, the paper's algorithm does not.

The Lemma 1 instance (single machine, long jobs at time 0, a stream of short
jobs behind them, ``Delta = L^2``) is run for a sweep of ``L`` against

* the immediate-rejection policies of
  :class:`repro.baselines.immediate_rejection.ImmediateRejectionScheduler`
  (which may only reject a job the instant it arrives), and
* the Theorem 1 algorithm (which may evict the running long job — Rule 1).

The experiment reports each policy's flow time normalised by the certified
lower bound, next to the ``c * sqrt(Delta)`` envelope of Lemma 1: the
immediate-rejection column should grow roughly linearly in ``L`` while the
Theorem 1 column stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.core.bounds import flow_time_competitive_ratio, immediate_rejection_lower_bound
from repro.experiments.registry import ExperimentResult
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import rejected_fraction, total_flow_time
from repro.solvers import make_policy
from repro.workloads.adversarial import lemma1_instance


@dataclass
class ImmediateRejectionExperimentConfig:
    """Sweep parameters of experiment E2."""

    lengths: tuple[float, ...] = (4.0, 8.0, 16.0, 24.0)
    epsilon: float = 0.25
    immediate_variants: tuple[str, ...] = ("largest", "overload")
    small_multiplier: float = 1.0


COLUMNS = (
    "L",
    "delta",
    "algorithm",
    "flow_time",
    "rejected_fraction",
    "ratio_vs_lb",
    "lemma1_envelope",
    "theorem1_bound",
)


def run(config: ImmediateRejectionExperimentConfig) -> ExperimentResult:
    """Run experiment E2 and return its result table."""
    table = ExperimentTable(
        title="E2: immediate rejection vs Theorem 1 on the Lemma 1 instance", columns=COLUMNS
    )
    raw: dict = {"rows": []}

    for length in config.lengths:
        instance = lemma1_instance(
            length=length, epsilon=config.epsilon, small_multiplier=config.small_multiplier
        )
        delta = instance.delta()
        lower_bound = best_flow_time_lower_bound(instance)
        engine = FlowTimeEngine(instance)

        schedulers = [make_policy("rejection-flow", epsilon=config.epsilon)]
        schedulers += [
            make_policy("immediate-rejection", epsilon=config.epsilon, variant=variant)
            for variant in config.immediate_variants
        ]

        for scheduler in schedulers:
            result = engine.run(scheduler)
            flow = total_flow_time(result)
            row = {
                "L": length,
                "delta": delta,
                "algorithm": scheduler.name,
                "flow_time": flow,
                "rejected_fraction": rejected_fraction(result),
                "ratio_vs_lb": flow / lower_bound if lower_bound > 0 else float("inf"),
                "lemma1_envelope": immediate_rejection_lower_bound(delta),
                "theorem1_bound": flow_time_competitive_ratio(config.epsilon),
            }
            table.add_row(row)
            raw["rows"].append(row)

    table.add_note(
        "Lemma 1 predicts the immediate-rejection rows grow like sqrt(delta) = L while the "
        "Theorem 1 row stays bounded by 2((1+eps)/eps)^2."
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Lemma 1: the price of immediate rejection",
        tables=[table],
        raw=raw,
    )
