"""The experiment suite (E1-E14).

The paper proves guarantees instead of reporting measurements, so these
experiments are the reproduction's counterpart of a systems paper's tables
and figures: each of E1-E9 empirically verifies one theorem or lemma (see
DESIGN.md section 3 for the index), E10 sweeps algorithms through the
unified solver registry, E12 maps the scalability frontier and E14 sweeps
every streaming solver across the heavy-traffic scenario catalog.  Every
experiment module exposes

* a ``*Config`` dataclass with the sweep parameters, and
* ``run(config) -> ExperimentResult``,

and the registry in :mod:`repro.experiments.registry` lets callers run them
by id (``run_experiment("E1")``), which is what the benchmark harness and
the examples do.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentRunUnit,
    ExperimentSpec,
    available_experiments,
    get_spec,
    make_config,
    run_config,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentRunUnit",
    "ExperimentSpec",
    "available_experiments",
    "get_spec",
    "make_config",
    "run_config",
    "run_experiment",
]
