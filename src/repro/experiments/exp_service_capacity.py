"""E15 — service capacity: concurrent sessions × throughput × decision latency.

E13 measured one streaming session against the batch facade; E14 swept
solvers across the scenario catalog.  E15 asks the *service* question the
multi-session subsystem exists to answer: how many concurrent tenant
sessions can one server host, and what does concurrency do to decision
latency — **without** ever compromising determinism?

Each row boots a loopback :mod:`repro.service.server` on its own thread,
drives ``sessions`` concurrent scenario streams through it with the
``repro loadgen`` harness (one thread + TCP connection + named session
each, chunked submit/poll round trips), and records:

* the deterministic outcome of the scheduling itself — total decision
  events, the summed objective value across sessions, rejected-job counts,
  and ``verified``: how many sessions finalized **byte-identical** to the
  batch :func:`repro.solve` of the same instance (the service's core
  correctness claim — concurrency must never change a schedule);
* only when ``measure_latency=True``, wall-clock service metrics: jobs/s
  throughput and p50/p99 per-chunk decision latency.  Latency is **off by
  default** so campaign artifacts stay byte-reproducible (same pattern as
  E14's ``measure_throughput``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult

#: Default ladder of concurrent session counts (the capacity sweep).
DEFAULT_SESSION_COUNTS = (1, 4, 16, 32)


@dataclass
class ServiceCapacityConfig:
    """Sweep parameters of experiment E15."""

    session_counts: tuple[int, ...] = DEFAULT_SESSION_COUNTS
    jobs_per_session: int = 200
    num_machines: int = 4
    epsilon: float = 0.5
    alpha: float = 3.0
    seed: int = 2018
    algorithm: str = "rejection-flow"
    #: Catalog scenarios cycled across sessions; empty tuple = the whole catalog.
    scenarios: tuple[str, ...] = ()
    #: Jobs per submit round trip (must stay <= max_pending).
    chunk_size: int = 32
    #: Per-session offer-queue bound (the backpressure limit).
    max_pending: int = 4096
    #: Compare every session's final summary byte-for-byte with batch solve.
    verify: bool = True
    #: Wall-clock throughput/latency columns; leave off for byte-reproducible
    #: artifacts (the campaign grids and nightly byte-stability run rely on it).
    measure_latency: bool = False


COLUMNS = (
    "sessions",
    "jobs_total",
    "decisions",
    "objective_sum",
    "rejected_jobs",
    "verified",
    "throttled",
    "throughput_jobs_per_s",
    "latency_p50_ms",
    "latency_p99_ms",
)


def _run_row(config: ServiceCapacityConfig, sessions: int) -> dict:
    """One capacity row: a fresh loopback server driven by ``sessions`` streams."""
    from repro.service.client import run_loadgen
    from repro.service.server import start_server_thread

    params = {"epsilon": config.epsilon}
    with start_server_thread(max_pending=config.max_pending) as handle:
        report = run_loadgen(
            handle.host,
            handle.port,
            sessions=sessions,
            jobs=config.jobs_per_session,
            machines=config.num_machines,
            seed=config.seed,
            alpha=config.alpha,
            algorithm=config.algorithm,
            params=params,
            scenarios=config.scenarios or None,
            chunk_size=config.chunk_size,
            verify=config.verify,
        )
    objective_sum = sum(r.final_row["objective_value"] for r in report.sessions)
    rejected = sum(r.final_row["rejected_count"] for r in report.sessions)
    row = {
        "sessions": sessions,
        "jobs_total": report.total_jobs,
        "decisions": report.total_decisions,
        "objective_sum": objective_sum,
        "rejected_jobs": rejected,
        "verified": report.verified if config.verify else "",
        "throttled": report.total_throttled,
    }
    if config.measure_latency:
        row["throughput_jobs_per_s"] = report.throughput_jobs_per_s
        row["latency_p50_ms"] = report.latency_p50_ms
        row["latency_p99_ms"] = report.latency_p99_ms
    return row


def run(config: ServiceCapacityConfig) -> ExperimentResult:
    """Run experiment E15 and return the service-capacity table."""
    if config.chunk_size > config.max_pending:
        raise ValueError(
            f"chunk_size={config.chunk_size} exceeds max_pending="
            f"{config.max_pending}; every submission would be throttled forever"
        )
    rows = [_run_row(config, sessions) for sessions in config.session_counts]

    table = ExperimentTable(
        title="E15: service capacity (concurrent sessions x throughput x latency)",
        columns=COLUMNS,
    )
    for row in rows:
        table.add_row({**{c: "" for c in COLUMNS}, **row})
    table.add_note(
        "Each row is one loopback server instance driven by N concurrent "
        "loadgen sessions (one thread + connection + named session each). "
        "verified counts sessions whose final summary is byte-identical to "
        "the batch repro.solve of the same instance. Wall-clock "
        "throughput/latency columns appear only with measure_latency=True "
        "so campaign artifacts stay byte-reproducible."
    )
    return ExperimentResult(
        experiment_id="E15",
        title="service capacity: concurrent sessions, throughput, decision latency",
        tables=[table],
        raw={
            "algorithm": config.algorithm,
            "session_counts": list(config.session_counts),
            "jobs_per_session": config.jobs_per_session,
            "chunk_size": config.chunk_size,
            "max_pending": config.max_pending,
            "rows": rows,
        },
    )
