"""E10 — algorithm sweep through the unified solver registry.

Unlike E1–E9, which each reproduce one claim of the paper, E10 exercises the
*solver API*: every algorithm in the sweep is constructed and run through
``repro.solve()`` on the same generated instances, and the report carries one
row per (workload seed × algorithm) with the solver's declared capability
metadata next to its measured cost.  Campaign grids use this experiment as
their algorithm axis — sweeping ``algorithms`` the same way E1 sweeps
``epsilons``.

Algorithms whose schema has an ``epsilon`` knob receive the config's
``epsilon``; everything else runs with its registry defaults, so any
registered algorithm id (including ``reference`` solvers that can handle
deadline-less instances) can be swept without per-algorithm plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult
from repro.simulation.validation import validate_result
from repro.solvers import get_solver, solve
from repro.workloads.generators import InstanceGenerator


@dataclass
class SolverCompareConfig:
    """Sweep parameters of experiment E10."""

    algorithms: tuple[str, ...] = (
        "rejection-flow",
        "greedy",
        "fcfs",
        "immediate-rejection",
        "speed-augmentation",
        "srpt-pooled",
        "offline-list",
    )
    num_jobs: int = 120
    num_machines: int = 4
    size_distribution: str = "pareto"
    epsilon: float = 0.5
    seed: int = 2018
    validate: bool = True


COLUMNS = (
    "algorithm",
    "model",
    "objective",
    "objective_value",
    "flow_time",
    "rejected_fraction",
    "rejected_weight_fraction",
    "supports_rejection",
)


def run(config: SolverCompareConfig) -> ExperimentResult:
    """Run experiment E10 and return its per-algorithm result table."""
    generator = InstanceGenerator(
        num_machines=config.num_machines,
        size_distribution=config.size_distribution,
        seed=config.seed,
    )
    instance = generator.generate(config.num_jobs)

    table = ExperimentTable(
        title="E10: algorithm sweep via repro.solve()", columns=COLUMNS
    )
    raw: dict = {"instance": instance.name, "rows": []}

    for algorithm in config.algorithms:
        spec = get_solver(algorithm)
        params = {"epsilon": config.epsilon} if "epsilon" in spec.param_specs() else {}
        outcome = solve(instance, algorithm, **params)
        if config.validate and outcome.result is not None:
            validate_result(outcome.result)
        row = {
            "algorithm": algorithm,
            "model": outcome.model,
            "objective": outcome.objective,
            "objective_value": outcome.objective_value,
            "flow_time": outcome.breakdown.get("flow_time", ""),
            "rejected_fraction": outcome.rejected_fraction,
            "rejected_weight_fraction": outcome.rejected_weight_fraction,
            "supports_rejection": spec.supports_rejection,
        }
        table.add_row(row)
        raw["rows"].append({**outcome.as_row(), "label": outcome.label})

    table.add_note(
        "every row was produced by repro.solve(instance, algorithm); reference-model "
        "rows are optimistic relaxations, not feasible competitors."
    )
    return ExperimentResult(
        experiment_id="E10",
        title="algorithm sweep through the solver registry",
        tables=[table],
        raw=raw,
    )
