"""Parallel experiment campaigns with a cached artifact store.

This package scales the experiment suite from "run E1–E10 sequentially and
print tables" to re-runnable (experiment × variant × seed × algorithm) grids:

* :mod:`~repro.campaigns.grids` names deterministic task grids;
* :mod:`~repro.campaigns.tasks` defines picklable tasks and their
  content-addressed artifact keys;
* :mod:`~repro.campaigns.backends` is the pluggable blob layer: filesystem,
  sqlite (object-store-shaped) and in-memory backends behind one
  :class:`StoreBackend` contract with atomic conditional puts;
* :mod:`~repro.campaigns.store` persists one canonical-JSON artifact per
  task on any backend;
* :mod:`~repro.campaigns.runner` fans pending tasks out over worker
  processes and skips everything already in the store (resumability);
* :mod:`~repro.campaigns.distributed` lets N independent worker processes
  (or hosts) sharing one backend execute a grid cooperatively via
  lease-based work stealing, with crash recovery and byte-identical
  results (:func:`run_campaign` is the one entry point for both modes);
* :mod:`~repro.campaigns.aggregate` merges artifacts into report tables and
  CSV exports without re-running anything;
* :mod:`~repro.campaigns.session_replay` records streaming-session decision
  traces as content-addressed artifacts and replays them to verify the
  streaming path stays byte-deterministic.

See docs/ARCHITECTURE.md for the data-flow diagram and the ``repro
campaign`` CLI for the user-facing entry point.
"""

from repro.campaigns.backends import (
    FilesystemBackend,
    MemoryBackend,
    SQLiteBackend,
    StoreBackend,
    open_backend,
)
from repro.campaigns.aggregate import (
    aggregate_tables,
    export_csv,
    render_campaign_report,
    summary_table,
    table_to_csv,
)
from repro.campaigns.grids import (
    DEFAULT_MASTER_SEED,
    GRIDS,
    CampaignGrid,
    GridEntry,
    algorithm_axis,
    available_grids,
    get_grid,
)
from repro.campaigns.distributed import (
    DEFAULT_LEASE_TTL,
    gc_store,
    run_campaign,
    run_worker,
)
from repro.campaigns.runner import (
    CampaignRunner,
    CampaignRunSummary,
    TaskOutcome,
    run_mapped,
)
from repro.campaigns.session_replay import (
    TRACE_SCHEMA_VERSION,
    SessionTrace,
    record_session_trace,
    replay_session_trace,
    trace_key,
)
from repro.campaigns.store import ArtifactStore, diff_stores
from repro.campaigns.tasks import (
    ARTIFACT_SCHEMA_VERSION,
    CampaignTask,
    payload_from_result,
    result_from_payload,
    run_task,
    task_from_payload,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactStore",
    "CampaignGrid",
    "CampaignRunner",
    "CampaignRunSummary",
    "CampaignTask",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MASTER_SEED",
    "FilesystemBackend",
    "GRIDS",
    "GridEntry",
    "MemoryBackend",
    "SQLiteBackend",
    "SessionTrace",
    "StoreBackend",
    "TRACE_SCHEMA_VERSION",
    "TaskOutcome",
    "aggregate_tables",
    "algorithm_axis",
    "available_grids",
    "diff_stores",
    "export_csv",
    "gc_store",
    "get_grid",
    "open_backend",
    "payload_from_result",
    "record_session_trace",
    "render_campaign_report",
    "replay_session_trace",
    "result_from_payload",
    "run_campaign",
    "run_mapped",
    "run_task",
    "run_worker",
    "summary_table",
    "table_to_csv",
    "task_from_payload",
    "trace_key",
]
