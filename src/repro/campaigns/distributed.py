"""Work-stealing distributed campaign execution over a shared store.

Any number of independent worker processes (or hosts) pointed at one store
backend cooperatively execute one campaign grid — no coordinator, no
assignment step, per-task resume.  The whole protocol is built from the
backend's three atomic primitives and one reserved key prefix:

* **claim** — a worker claims a task by atomically creating the lease
  marker ``leases/<task key>`` (``put_if_absent``).  The lease carries the
  worker id, an absolute expiry (wall clock + TTL) and a steal counter.
* **heartbeat** — while computing, a background thread renews the lease by
  compare-and-set every ``ttl / 4``, so live workers keep long tasks.
* **steal** — a worker finding an *expired* lease CASes its own lease over
  the old blob; exactly one concurrent stealer wins.  This is the whole
  crash story: a worker killed mid-task simply stops heartbeating, and its
  task is re-executed elsewhere after at most one TTL.
* **publish** — results are published with ``save_if_absent`` (first
  writer wins).  Duplicated work — an owner that lost its lease but
  finished anyway — is harmless: artifacts are canonical JSON keyed by
  content hash, so every writer holds identical bytes.
* **release** — the lease is deleted after publishing; once the artifact
  exists, any worker that sees a leftover lease clears it.  A finished
  store therefore contains artifacts only, byte-identical to a sequential
  single-worker run on any backend.

Workers exit when every task's artifact exists, so ``run_worker`` doubles
as a barrier: whichever process returns last observed the completed grid.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Callable, Sequence

from repro.campaigns.runner import CampaignRunner, CampaignRunSummary, TaskOutcome
from repro.campaigns.store import LEASE_PREFIX, ArtifactStore
from repro.campaigns.tasks import CampaignTask, run_task
from repro.exceptions import InvalidParameterError
from repro.utils.serialization import canonical_json

#: Default lease time-to-live.  Generous relative to heartbeat cadence
#: (ttl/4) so GC pauses don't cause spurious steals, small enough that a
#: crashed worker's task is rerun quickly.
DEFAULT_LEASE_TTL = 30.0


def default_worker_id() -> str:
    """A worker id unique per (host, process): ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def lease_key_for(key: str) -> str:
    """Backend key of the lease marker guarding artifact ``key``."""
    return f"{LEASE_PREFIX}{key}"


def encode_lease(worker: str, expires_at: float, seq: int) -> bytes:
    """Canonical lease blob; CAS tokens compare these bytes exactly."""
    return canonical_json(
        {"worker": worker, "expires_at": expires_at, "seq": seq}
    ).encode("utf-8")


def decode_lease(blob: bytes) -> "dict | None":
    """Parse a lease blob; ``None`` for corrupt blobs (treated as expired)."""
    try:
        lease = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(lease, dict) or "expires_at" not in lease:
        return None
    return lease


def try_claim(
    store: ArtifactStore,
    key: str,
    worker: str,
    ttl: float,
    clock: Callable[[], float] = time.time,
) -> "bytes | None":
    """Attempt to claim (or steal) the lease for ``key``.

    Returns the lease blob now held — the CAS token for renewal/release —
    or ``None`` if another worker holds an unexpired lease.
    """
    backend = store.backend
    lkey = lease_key_for(key)
    now = clock()
    fresh = encode_lease(worker, now + ttl, 0)
    if backend.put_if_absent(lkey, fresh):
        return fresh
    current = backend.get(lkey)
    if current is None:
        # Released between our put_if_absent and get: retry the create once;
        # losing again means a rival claimed it first.
        return fresh if backend.put_if_absent(lkey, fresh) else None
    lease = decode_lease(current)
    if lease is not None and lease.get("worker") != worker and lease["expires_at"] > now:
        return None
    seq = (lease or {}).get("seq", 0)
    stolen = encode_lease(worker, now + ttl, int(seq) + 1)
    return stolen if backend.compare_and_put(lkey, stolen, expected=current) else None


def renew_lease(
    store: ArtifactStore,
    key: str,
    token: bytes,
    worker: str,
    ttl: float,
    clock: Callable[[], float] = time.time,
) -> "bytes | None":
    """Extend a held lease; returns the new token, or ``None`` if lost."""
    lease = decode_lease(token) or {"seq": 0}
    renewed = encode_lease(worker, clock() + ttl, int(lease.get("seq", 0)))
    if store.backend.compare_and_put(lease_key_for(key), renewed, expected=token):
        return renewed
    return None


def release_lease(store: ArtifactStore, key: str, token: bytes) -> None:
    """Drop a held lease (best effort — a stolen lease is left alone)."""
    lkey = lease_key_for(key)
    if store.backend.get(lkey) == token:
        store.backend.delete(lkey)


class LeaseHeartbeat(threading.Thread):
    """Renews one lease every ``ttl / 4`` until stopped or lost."""

    def __init__(
        self,
        store: ArtifactStore,
        key: str,
        token: bytes,
        worker: str,
        ttl: float,
        clock: Callable[[], float] = time.time,
    ):
        super().__init__(daemon=True, name=f"lease-heartbeat-{key[:8]}")
        self._store = store
        self._key = key
        self.token = token
        self._worker = worker
        self._ttl = ttl
        self._clock = clock
        self._stopped = threading.Event()
        #: Set when a renewal CAS fails — the lease was stolen (or cleared);
        #: the owner may still finish and publish, that's safe by design.
        self.lost = False

    def run(self) -> None:
        interval = max(self._ttl / 4.0, 0.01)
        while not self._stopped.wait(interval):
            renewed = renew_lease(
                self._store, self._key, self.token, self._worker, self._ttl,
                clock=self._clock,
            )
            if renewed is None:
                self.lost = True
                return
            self.token = renewed

    def stop(self) -> None:
        self._stopped.set()
        self.join()


def run_worker(
    store: ArtifactStore,
    tasks: Sequence[CampaignTask],
    *,
    worker_id: "str | None" = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll_interval: "float | None" = None,
    task_runner: Callable[[CampaignTask], dict] = run_task,
    progress=None,
    clock: Callable[[], float] = time.time,
) -> CampaignRunSummary:
    """Run one cooperative worker until every task's artifact exists.

    Computes in-process, one task at a time: parallelism comes from running
    several ``run_worker`` processes (or threads, in tests) against the
    same store.  The returned summary is this worker's view — tasks it
    computed count as computed, everything satisfied from the store
    (pre-existing artifacts *and* rivals' results) counts as cached — so
    summing ``computed`` across a fleet equals the number of distinct tasks.
    """
    if lease_ttl <= 0:
        raise InvalidParameterError(f"lease_ttl must be > 0, got {lease_ttl}")
    worker = worker_id or default_worker_id()
    wait = poll_interval if poll_interval is not None else min(0.2, lease_ttl / 10.0)
    start = time.perf_counter()
    summary = CampaignRunSummary(workers=1)

    remaining: dict[str, CampaignTask] = {}
    for task in tasks:
        key = task.key()
        if key in remaining:
            # Duplicate config inside one grid: one compute, reported once
            # per occurrence (mirrors the pool runner's dedupe).
            summary.outcomes.append(TaskOutcome(task=task, key=key, cached=True))
        else:
            remaining[key] = task

    def note(line: str) -> None:
        if progress is not None:
            progress(f"[{worker}] {line}")

    while remaining:
        progressed = False
        for key in list(remaining):
            task = remaining[key]
            if store.has(key):
                # Computed before this run or by a rival worker just now;
                # either way the lease (if any survives) is moot.
                store.backend.delete(lease_key_for(key))
                summary.outcomes.append(TaskOutcome(task=task, key=key, cached=True))
                note(f"cached   {task.label} [{key}]")
                del remaining[key]
                progressed = True
                continue
            token = try_claim(store, key, worker, lease_ttl, clock=clock)
            if token is None:
                continue
            heartbeat = LeaseHeartbeat(store, key, token, worker, lease_ttl, clock=clock)
            heartbeat.start()
            try:
                started = time.perf_counter()
                payload = task_runner(task)
                duration = time.perf_counter() - started
            finally:
                heartbeat.stop()
            published = store.save_if_absent(key, payload)
            release_lease(store, key, heartbeat.token)
            if published:
                summary.outcomes.append(
                    TaskOutcome(task=task, key=key, cached=False, duration_s=duration)
                )
                note(f"computed {task.label} [{key}] ({duration:.2f}s)")
            else:
                # A stealer published first; identical bytes, count as cached.
                summary.outcomes.append(TaskOutcome(task=task, key=key, cached=True))
                note(f"duplicate {task.label} [{key}] (lost publish race)")
            del remaining[key]
            progressed = True
        if remaining and not progressed:
            time.sleep(wait)

    summary.wall_time_s = time.perf_counter() - start
    return summary


def gc_store(
    store: ArtifactStore,
    *,
    clock: Callable[[], float] = time.time,
) -> dict:
    """Collect protocol residue a crashed worker can leave behind.

    Removes lease markers that are moot (their artifact exists), expired or
    corrupt, plus the filesystem backend's orphaned temp/lock files.  Safe
    to run any time; only leases of *live* in-flight tasks survive.  After
    a campaign finishes this restores the store to artifacts-only, so
    cross-store comparisons (``diff -r``, ``repro campaign diff``) see
    exactly the sequential store's contents.
    """
    now = clock()
    removed_leases = 0
    for lkey in store.backend.list_keys(LEASE_PREFIX):
        key = lkey[len(LEASE_PREFIX):]
        blob = store.backend.get(lkey)
        if blob is None:
            continue
        lease = decode_lease(blob)
        if store.has(key) or lease is None or lease["expires_at"] <= now:
            if store.backend.delete(lkey):
                removed_leases += 1
    removed_transients = store.backend.sweep_transients()
    return {"leases": removed_leases, "transients": removed_transients}


def run_campaign(
    tasks: Sequence[CampaignTask],
    store: ArtifactStore,
    *,
    workers: int = 1,
    distributed: bool = False,
    worker_id: "str | None" = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    progress=None,
) -> CampaignRunSummary:
    """Execute a campaign either as a worker pool or as one fleet worker.

    ``distributed=False`` (default) is the classic single-coordinator path:
    a :class:`CampaignRunner` fanning pending tasks over ``workers``
    processes, the parent alone writing artifacts.  ``distributed=True``
    runs one cooperative work-stealing worker instead — start N processes
    (each calling this with the same tasks and a store on a shared backend)
    to execute the grid N-wide with crash tolerance and no coordinator.
    """
    if distributed:
        if workers != 1:
            raise InvalidParameterError(
                "distributed mode runs one worker per process; "
                "start more processes instead of passing workers > 1"
            )
        return run_worker(
            store, tasks, worker_id=worker_id, lease_ttl=lease_ttl, progress=progress
        )
    return CampaignRunner(store, workers=workers).run(tasks, progress=progress)
