"""Aggregate stored campaign artifacts into report tables and CSV exports.

Aggregation is a pure function of the artifact store contents and the task
list: tasks are processed in sorted label order and every value comes from
the stored payloads, so sequential and parallel campaigns (and cached
re-runs) render identical reports.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Sequence

from repro.analysis.reporting import ExperimentTable, render_report
from repro.campaigns.store import ArtifactStore
from repro.campaigns.tasks import CampaignTask, result_from_payload

SUMMARY_COLUMNS = ("task", "experiment", "variant", "seed", "artifact", "table_rows")


def aggregate_tables(
    store: ArtifactStore, tasks: Sequence[CampaignTask]
) -> list[ExperimentTable]:
    """Merge the artifacts of ``tasks`` into per-experiment tables.

    Tasks of one experiment share their table schema; the merged table gains
    leading ``variant``/``seed`` columns identifying the grid cell each row
    came from.  Raises if any task's artifact is missing — run the campaign
    (or the missing tasks) first.
    """
    ordered = sorted(tasks, key=lambda task: (task.experiment_id, task.variant, task.label))
    merged: dict[tuple[str, str], ExperimentTable] = {}
    for task in ordered:
        payload = store.load(task.key())
        result = result_from_payload(payload)
        for table in result.tables:
            slot = (task.experiment_id, table.title)
            target = merged.get(slot)
            if target is None:
                target = ExperimentTable(
                    title=f"{table.title} [campaign]",
                    columns=("variant", "seed") + tuple(table.columns),
                )
                for note in table.notes:
                    target.add_note(note)
                merged[slot] = target
            seed_cell = task.seed if task.seed is not None else "-"
            for row in table.rows:
                target.add_row({"variant": task.variant, "seed": seed_cell, **row})
    return [merged[slot] for slot in sorted(merged)]


def summary_table(outcomes) -> ExperimentTable:
    """Per-task campaign summary (cached vs computed) as a report table."""
    table = ExperimentTable(
        title="campaign task summary",
        columns=("task", "status", "artifact", "duration_s"),
    )
    for outcome in sorted(outcomes, key=lambda o: o.task.label):
        table.add_row(
            {
                "task": outcome.task.label,
                "status": "cached" if outcome.cached else "computed",
                "artifact": outcome.key,
                "duration_s": (
                    outcome.duration_s if outcome.duration_s is not None else "-"
                ),
            }
        )
    return table


def render_campaign_report(
    store: ArtifactStore, tasks: Sequence[CampaignTask], header: str | None = None
) -> str:
    """Render the aggregated campaign tables as one report string."""
    return render_report(aggregate_tables(store, tasks), header=header)


def _slug(text: str) -> str:
    return re.sub(r"-+", "-", re.sub(r"[^a-z0-9]+", "-", text.lower())).strip("-")


def table_to_csv(table: ExperimentTable) -> str:
    """Serialise one table as CSV text (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow([row[col] for col in table.columns])
    return buffer.getvalue()


def export_csv(tables: Sequence[ExperimentTable], directory: "str | Path") -> list[Path]:
    """Write every table as ``<slug(title)>.csv`` under ``directory``."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for table in tables:
        path = out_dir / f"{_slug(table.title)}.csv"
        path.write_text(table_to_csv(table), encoding="utf-8")
        written.append(path)
    return written
