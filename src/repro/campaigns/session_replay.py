"""Recorded session traces in the campaign artifact store.

A *session trace* is the full decision-event stream of one streaming
:class:`~repro.service.session.SchedulerSession` run over a concrete
instance, stored as a content-addressed canonical-JSON artifact — the same
:class:`~repro.campaigns.store.ArtifactStore` machinery the campaign runner
uses, with the same guarantees:

* the artifact **key** hashes the trace configuration (instance content,
  algorithm, validated parameters, dispatch mode), so recording the same
  configuration twice is a cache hit, not a recomputation;
* the **payload** is canonical JSON, so identical runs produce byte-identical
  artifacts;
* :func:`replay_session_trace` re-runs a stored trace from its embedded
  instance and verifies the replayed decision stream and outcome are
  byte-identical to what was recorded — the determinism gate for the
  streaming path, mirroring the dispatch-mode equivalence gate of the
  batch campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.campaigns.store import ArtifactStore
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance
from repro.utils.serialization import canonical_json, jsonify, stable_hash

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SessionTrace",
    "trace_key",
    "record_session_trace",
    "replay_session_trace",
]

#: Bump when the trace payload layout changes; part of the key, so stale
#: artifacts are re-recorded instead of misread.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SessionTrace:
    """One recorded (or replayed) session trace.

    ``cached`` is ``True`` when the artifact already existed and no session
    ran; ``payload`` is the stored canonical-JSON document.
    """

    key: str
    payload: dict
    cached: bool

    @property
    def events(self) -> list[dict]:
        """The recorded decision events (dicts, in emission order)."""
        return self.payload["events"]

    @property
    def outcome_row(self) -> dict:
        """The recorded ``SolveOutcome.as_row()`` of the finalized session."""
        return self.payload["outcome"]


def _trace_config(instance: Instance, algorithm: str, params: dict, dispatch: str) -> dict:
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "algorithm": algorithm,
        "params": jsonify(params),
        "dispatch": dispatch,
        "instance": instance.to_dict(),
    }


def trace_key(instance: Instance, algorithm: str, params: dict, dispatch: str) -> str:
    """Content-addressed artifact key of a trace configuration."""
    return stable_hash(_trace_config(instance, algorithm, params, dispatch), length=32)


def _run_trace(instance: Instance, algorithm: str, dispatch: str | None, params: dict) -> dict:
    from repro.service import open_session

    session = open_session(
        algorithm, instance.machines, dispatch=dispatch, name=instance.name, **params
    )
    for job in instance.jobs:
        session.submit(job)
    outcome = session.finalize()
    config = _trace_config(instance, algorithm, session.params, session.dispatch)
    return {
        **config,
        "events": [event.as_dict() for event in session.events],
        "outcome": outcome.as_row(),
    }


def record_session_trace(
    store: ArtifactStore,
    instance: Instance,
    algorithm: str = "rejection-flow",
    dispatch: str | None = None,
    **params: Any,
) -> SessionTrace:
    """Run a streaming session over ``instance`` and store its trace.

    Resumable exactly like campaign tasks: when the store already holds an
    artifact for this configuration the stored payload is returned without
    running anything (``cached=True``).
    """
    from repro.solvers.registry import get_solver
    from repro.simulation.engine import default_dispatch_mode

    spec = get_solver(algorithm)
    validated = spec.validate_params(params)
    effective_dispatch = default_dispatch_mode() if dispatch is None else dispatch
    key = trace_key(instance, algorithm, validated, effective_dispatch)
    if store.has(key):
        return SessionTrace(key=key, payload=store.load(key), cached=True)
    payload = _run_trace(instance, algorithm, dispatch, validated)
    store.save(key, payload)
    return SessionTrace(key=key, payload=payload, cached=False)


def replay_session_trace(store: ArtifactStore, key: str) -> SessionTrace:
    """Re-run a stored trace and verify it reproduces byte-identically.

    Rebuilds the instance embedded in the artifact, streams it through a
    fresh session under the recorded algorithm/parameters/dispatch mode, and
    compares the replayed decision events and outcome against the stored
    payload at the canonical-JSON byte level.  A mismatch raises — it means
    the engine, the policy or the session lost determinism.
    """
    payload = store.load(key)
    if payload.get("schema") != TRACE_SCHEMA_VERSION:
        raise InvalidParameterError(
            f"trace {key!r} has schema {payload.get('schema')!r}; "
            f"this version replays schema {TRACE_SCHEMA_VERSION}"
        )
    instance = Instance.from_dict(payload["instance"])
    params = {str(k): v for k, v in dict(payload["params"]).items()}
    replayed = _run_trace(instance, payload["algorithm"], payload["dispatch"], params)
    if canonical_json(replayed) != canonical_json(payload):
        for field in ("events", "outcome"):
            if canonical_json(replayed[field]) != canonical_json(payload[field]):
                raise InvalidParameterError(
                    f"trace {key!r} replay diverged in {field!r}: the streaming "
                    "path is no longer deterministic for this configuration"
                )
        raise InvalidParameterError(f"trace {key!r} replay diverged from the stored payload")
    return SessionTrace(key=key, payload=replayed, cached=False)
