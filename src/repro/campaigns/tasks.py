"""Campaign tasks: one (experiment × variant × seed) cell of a campaign grid.

A :class:`CampaignTask` is pure picklable data.  :func:`run_task` — a
module-level function so it pickles by reference — turns one into a JSON
artifact payload, and :func:`result_from_payload` rebuilds an
:class:`~repro.experiments.registry.ExperimentResult` from a stored payload,
so reports can be regenerated without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.reporting import ExperimentTable
from repro.experiments.registry import ExperimentResult, ExperimentRunUnit
from repro.utils.serialization import jsonify, stable_hash, tuplify

#: Bump when the payload schema changes; part of the artifact key so stale
#: artifacts are recomputed instead of misread.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignTask:
    """One runnable cell of a campaign grid.

    ``overrides`` holds the config overrides as sorted ``(name, value)``
    pairs (hashable, picklable); ``seed`` is ``None`` for experiments whose
    config has no ``seed`` knob (deterministic constructions such as E2/E5).
    """

    experiment_id: str
    variant: str
    seed: int | None
    overrides: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        experiment_id: str,
        variant: str = "default",
        seed: int | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> "CampaignTask":
        """Build a task, normalising overrides to sorted hashable items.

        List values (e.g. from a JSON round trip through the artifact store)
        become tuples, so a task rebuilt via :func:`task_from_payload`
        compares and hashes equal to the one that produced the payload.
        """
        items = tuple(
            sorted((name, tuplify(value)) for name, value in (overrides or {}).items())
        )
        return cls(
            experiment_id=experiment_id.upper(),
            variant=variant,
            seed=seed,
            overrides=items,
        )

    @property
    def label(self) -> str:
        """Human-readable task id, e.g. ``E1/default/s2018``."""
        seed_part = f"s{self.seed}" if self.seed is not None else "det"
        return f"{self.experiment_id}/{self.variant}/{seed_part}"

    def effective_overrides(self) -> dict[str, Any]:
        """The overrides actually applied, with the per-task seed folded in."""
        overrides = dict(self.overrides)
        if self.seed is not None:
            overrides["seed"] = self.seed
        return overrides

    def to_unit(self) -> ExperimentRunUnit:
        """The picklable run unit executing this task."""
        return ExperimentRunUnit.create(self.experiment_id, self.effective_overrides())

    def key(self) -> str:
        """Content-addressed artifact key: a hash of everything that shapes
        the result (experiment, config overrides, payload schema version)."""
        return stable_hash(
            {
                "schema": ARTIFACT_SCHEMA_VERSION,
                "experiment": self.experiment_id,
                "overrides": self.effective_overrides(),
            }
        )


def run_task(task: CampaignTask) -> dict:
    """Execute ``task`` and return its JSON artifact payload.

    Module-level (not a closure or method) so :mod:`multiprocessing` can ship
    it to worker processes by reference.
    """
    result = task.to_unit().run()
    return payload_from_result(task, result)


def payload_from_result(task: CampaignTask, result: ExperimentResult) -> dict:
    """Encode an experiment result as a plain-JSON artifact payload."""
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "key": task.key(),
        "task": {
            "experiment_id": task.experiment_id,
            "variant": task.variant,
            "seed": task.seed,
            "overrides": jsonify(dict(task.overrides)),
        },
        "result": {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "tables": [
                {
                    "title": table.title,
                    "columns": list(table.columns),
                    "rows": jsonify(table.rows),
                    "notes": list(table.notes),
                }
                for table in result.tables
            ],
            "raw": jsonify(result.raw),
        },
    }


def result_from_payload(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a stored artifact payload."""
    encoded = payload["result"]
    tables = [
        ExperimentTable(
            title=t["title"],
            columns=tuple(t["columns"]),
            rows=[dict(row) for row in t["rows"]],
            notes=list(t["notes"]),
        )
        for t in encoded["tables"]
    ]
    return ExperimentResult(
        experiment_id=encoded["experiment_id"],
        title=encoded["title"],
        tables=tables,
        raw=encoded["raw"],
    )


def task_from_payload(payload: dict) -> CampaignTask:
    """Rebuild the originating task from a stored artifact payload."""
    encoded = payload["task"]
    return CampaignTask.create(
        experiment_id=encoded["experiment_id"],
        variant=encoded["variant"],
        seed=encoded["seed"],
        overrides=encoded["overrides"],
    )
