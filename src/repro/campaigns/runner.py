"""Campaign execution: fan tasks out over worker processes, cache results.

The runner is deliberately simple and crash-safe:

1. partition the task list into *cached* (artifact already in the store) and
   *pending* (must run);
2. run the pending tasks — in-process when ``workers <= 1``, otherwise via a
   :class:`multiprocessing.Pool` mapping the module-level
   :func:`~repro.campaigns.tasks.run_task` over picklable tasks;
3. the parent process alone writes artifacts (workers only compute), so the
   store never sees concurrent writers;
4. aggregation always reads back from the store, so a fully cached re-run
   produces exactly the same report as the run that computed it.

The fan-out itself (:func:`run_mapped`) is generic — timed, index-tagged,
streaming results as workers finish — and shared with the parallel
shard-and-merge solver (:func:`repro.parallel.shard_solve`), which maps
per-shard solve tasks over the same pool pattern.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.campaigns.store import ArtifactStore
from repro.campaigns.tasks import CampaignTask, run_task
from repro.exceptions import InvalidParameterError


def _run_indexed(packed: "tuple[int, Callable, object]") -> tuple[int, object, float]:
    """Worker entry point: apply ``fn`` to one item, timed, index-tagged.

    Module-level so :mod:`multiprocessing` pickles it by reference; ``fn``
    itself must also be a module-level callable for the same reason.
    """
    index, fn, item = packed
    started = time.perf_counter()
    result = fn(item)
    return index, result, time.perf_counter() - started


def run_mapped(
    items: Sequence, fn: Callable, workers: int = 1
) -> Iterator[tuple[int, object, float]]:
    """Map a picklable ``fn`` over ``items`` across worker processes.

    Yields ``(index, fn(items[index]), duration_s)`` as items finish —
    in submission order when ``workers == 1`` (everything runs in-process),
    unordered otherwise (``imap_unordered`` streams results so the consumer
    can persist each one the moment it lands; a crash or interrupt loses
    only the work still in flight).  The index ties a result back to its
    item, so callers stay order-independent.  Workers only compute; any
    writing is the consumer's job, which keeps single-writer invariants
    (e.g. the artifact store's) intact.
    """
    if workers < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    if not items:
        return
    if workers == 1 or len(items) == 1:
        for index, item in enumerate(items):
            started = time.perf_counter()
            yield index, fn(item), time.perf_counter() - started
        return
    with multiprocessing.Pool(processes=min(workers, len(items))) as pool:
        yield from pool.imap_unordered(
            _run_indexed, [(index, fn, item) for index, item in enumerate(items)]
        )


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task during a campaign run."""

    task: CampaignTask
    key: str
    cached: bool
    duration_s: float | None = None


@dataclass
class CampaignRunSummary:
    """Bookkeeping for one :meth:`CampaignRunner.run` invocation."""

    outcomes: list[TaskOutcome] = field(default_factory=list)
    workers: int = 1
    wall_time_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def computed(self) -> int:
        return self.total - self.cached

    @property
    def cache_hit_fraction(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def describe(self) -> str:
        """One-line human summary, e.g. ``9 tasks: 0 computed, 9 cached (100% cache hits)``."""
        return (
            f"{self.total} tasks: {self.computed} computed, {self.cached} cached "
            f"({100 * self.cache_hit_fraction:.0f}% cache hits) "
            f"in {self.wall_time_s:.2f}s with {self.workers} worker(s)"
        )


class CampaignRunner:
    """Runs campaign tasks against an artifact store, skipping cached ones."""

    def __init__(self, store: ArtifactStore, workers: int = 1):
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.workers = workers

    def run(self, tasks: list[CampaignTask], progress=None) -> CampaignRunSummary:
        """Execute ``tasks``, reusing cached artifacts; returns the summary.

        ``progress`` is an optional callable receiving one line per finished
        task (used by the CLI; tests pass a list's ``append``).
        """
        start = time.perf_counter()
        summary = CampaignRunSummary(workers=self.workers)
        keyed = [(task, task.key()) for task in tasks]
        seen: set[str] = set()
        pending: list[tuple[CampaignTask, str]] = []
        for task, key in keyed:
            if self.store.has(key):
                summary.outcomes.append(TaskOutcome(task=task, key=key, cached=True))
                self._note(progress, f"cached   {task.label} [{key}]")
            elif key in seen:
                # Duplicate config inside one grid: computed once, reported once.
                summary.outcomes.append(TaskOutcome(task=task, key=key, cached=True))
            else:
                seen.add(key)
                pending.append((task, key))

        for task, key, payload, duration in self._execute(pending):
            self.store.save(key, payload)
            summary.outcomes.append(
                TaskOutcome(task=task, key=key, cached=False, duration_s=duration)
            )
            self._note(progress, f"computed {task.label} [{key}] ({duration:.2f}s)")

        summary.wall_time_s = time.perf_counter() - start
        return summary

    def _execute(self, pending: list[tuple[CampaignTask, str]]):
        """Yield ``(task, key, payload, duration_s)`` for every pending task."""
        tasks = [task for task, _ in pending]
        for index, payload, duration in run_mapped(tasks, run_task, workers=self.workers):
            task, key = pending[index]
            yield task, key, payload, duration

    @staticmethod
    def _note(progress, line: str) -> None:
        if progress is not None:
            progress(line)
