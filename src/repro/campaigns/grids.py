"""Named campaign grids: (experiment × config variant × seed) task sets.

A grid expands into concrete :class:`~repro.campaigns.tasks.CampaignTask`
instances with deterministic per-task seeds derived from one master seed via
:func:`repro.utils.rng.seeds_for` — so the task set (and therefore every
artifact key) is a pure function of ``(grid name, master seed)``.  Experiments
whose configs have no ``seed`` knob (the deterministic constructions E2 and
E5) contribute exactly one task per variant.

Besides the (experiment × variant × seed) axes, grids can sweep *algorithms*:
:func:`algorithm_axis` expands a list of solver-registry ids into one entry
per algorithm (variant = algorithm id) on top of experiment E10, which runs
each algorithm through ``repro.solve()`` — so campaigns compare schedulers
the same way they compare experiment configurations.

Shipped grids:

* ``smoke``   — E1 only, one seed; used by the test suite;
* ``smoke-dist`` — E10 at a few thousand jobs, 2 variants × 4 seeds: eight
  ~half-second tasks, enough runway for the distributed-campaign CI job to
  kill a worker mid-run and watch a rival steal its lease;
* ``small``   — all of E1–E10 + E12/E14/E15/E16/E17 at miniature sweep sizes, two
  seeds; finishes in well under a minute, the acceptance grid for
  ``repro campaign run``;
* ``medium``  — the experiments' default sweep sizes, three seeds; the
  campaign analogue of the benchmark harness;
* ``solvers`` — the algorithm axis: one task per registered flow-time
  algorithm, two seeds each, aggregated into per-algorithm report rows;
* ``e14``     — the robustness frontier on its own: every catalog scenario ×
  every streaming solver, two seeds (a nightly byte-stability sweep);
* ``e16``     — the partition-cost sweep on its own: every catalog scenario ×
  shard counts {1,2,4,8}, two seeds (a nightly byte-stability sweep);
* ``e17``     — the adaptive-regret sweep on its own: every drifting scenario ×
  fixed candidates + meta switch policies, two seeds (a nightly byte-stability
  sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.campaigns.tasks import CampaignTask
from repro.exceptions import InvalidParameterError
from repro.experiments.exp_solver_compare import SolverCompareConfig
from repro.experiments.registry import get_spec
from repro.solvers import get_solver
from repro.utils.rng import seeds_for

DEFAULT_MASTER_SEED = 2018


@dataclass(frozen=True)
class GridEntry:
    """One experiment variant inside a grid."""

    experiment_id: str
    variant: str = "default"
    overrides: tuple[tuple[str, Any], ...] = ()
    num_seeds: int = 1

    @classmethod
    def create(
        cls,
        experiment_id: str,
        variant: str = "default",
        overrides: Mapping[str, Any] | None = None,
        num_seeds: int = 1,
    ) -> "GridEntry":
        return cls(
            experiment_id=experiment_id.upper(),
            variant=variant,
            overrides=tuple(sorted((overrides or {}).items())),
            num_seeds=num_seeds,
        )


@dataclass(frozen=True)
class CampaignGrid:
    """A named, fully deterministic set of campaign tasks."""

    name: str
    description: str
    entries: tuple[GridEntry, ...]

    def tasks(self, master_seed: int = DEFAULT_MASTER_SEED) -> list[CampaignTask]:
        """Expand the grid into concrete tasks with derived per-task seeds."""
        tasks: list[CampaignTask] = []
        for entry in self.entries:
            spec = get_spec(entry.experiment_id)
            overrides = dict(entry.overrides)
            if not spec.accepts_seed():
                tasks.append(
                    CampaignTask.create(
                        entry.experiment_id, entry.variant, seed=None, overrides=overrides
                    )
                )
                continue
            labels = [
                f"{entry.experiment_id}/{entry.variant}/{index}"
                for index in range(entry.num_seeds)
            ]
            for label, seed in seeds_for(master_seed, labels).items():
                tasks.append(
                    CampaignTask.create(
                        entry.experiment_id, entry.variant, seed=seed, overrides=overrides
                    )
                )
        return tasks


def _grid(name: str, description: str, entries: list[GridEntry]) -> CampaignGrid:
    return CampaignGrid(name=name, description=description, entries=tuple(entries))


def algorithm_axis(
    algorithms: Sequence[str],
    base_overrides: Mapping[str, Any] | None = None,
    num_seeds: int = 1,
    experiment_id: str = "E10",
) -> list[GridEntry]:
    """Expand solver-registry ids into one grid entry per algorithm.

    Each entry runs ``experiment_id`` (E10 by default) with the single
    algorithm as its sweep, using the algorithm id as the variant name — so
    aggregated campaign reports carry one row group per algorithm and cached
    artifacts are keyed per algorithm.  Ids are validated against the solver
    registry up front, so a typo fails at grid-expansion time rather than
    inside a worker process.
    """
    for algorithm in algorithms:
        get_solver(algorithm)
    return [
        GridEntry.create(
            experiment_id,
            variant=algorithm,
            overrides={**(dict(base_overrides or {})), "algorithms": (algorithm,)},
            num_seeds=num_seeds,
        )
        for algorithm in algorithms
    ]


#: Miniature sweep sizes mirroring the test suite's "runs in seconds" configs.
_SMALL_OVERRIDES: dict[str, dict[str, Any]] = {
    "E1": {"epsilons": (0.25, 0.5), "workloads": ("poisson-pareto",)},
    "E2": {"lengths": (4.0, 8.0), "epsilon": 0.25},
    "E3": {"alphas": (2.0,), "epsilons": (0.5,), "num_jobs": 40},
    "E4": {"alphas": (2.0,), "slacks": (3.0,), "num_jobs": 8},
    "E5": {"alphas": (2.0, 3.0)},
    "E6": {"epsilons": (0.5,), "workloads": ("poisson-pareto",)},
    "E7": {"epsilons": (0.5,), "num_jobs": 25, "samples_per_job": 6},
    "E8": {"job_counts": (200,), "machine_counts": (2,)},
    "E9": {"workloads": ("lemma1-L16",), "epsilon": 0.25},
    "E10": {"algorithms": ("rejection-flow", "greedy"), "num_jobs": 40},
    "E12": {"job_counts": (1_000, 4_000), "algorithms": ("rejection-flow", "greedy")},
    "E14": {
        "scenarios": ("heavy-tail-pareto", "flash-crowd", "multi-tenant-mix"),
        "algorithms": ("rejection-flow", "greedy", "fcfs"),
        "num_jobs": 60,
    },
    "E15": {
        "session_counts": (1, 3),
        "jobs_per_session": 40,
        "num_machines": 2,
        "scenarios": ("heavy-tail-pareto", "flash-crowd", "multi-tenant-mix"),
    },
    "E16": {
        "scenarios": ("flash-crowd", "multi-tenant-mix"),
        "shard_counts": (1, 2),
        "num_jobs": 60,
        "num_machines": 4,
    },
    "E17": {
        "scenarios": ("drift-ramp-heavytail",),
        "meta_policies": ("threshold",),
        "num_jobs": 60,
    },
}

#: Sweep-size caps for the ``medium`` grid where the experiment's defaults
#: are sized for a one-off frontier run rather than a 3-seed campaign.
_MEDIUM_OVERRIDES: dict[str, dict[str, Any]] = {
    "E12": {"job_counts": (1_000, 10_000, 50_000)},
    "E15": {"session_counts": (1, 4, 16), "jobs_per_session": 120},
    "E16": {"num_jobs": 200},
}

#: Algorithms swept by the ``solvers`` grid: E10's default sweep (flow-time
#: model + references that work on deadline-less instances), kept in one
#: place so the grid never desynchronises from a default E10 run.
_SOLVER_AXIS = SolverCompareConfig().algorithms

GRIDS: dict[str, CampaignGrid] = {
    grid.name: grid
    for grid in (
        _grid(
            "smoke",
            "E1 only at miniature scale, one seed (test grid)",
            [
                GridEntry.create(
                    "E1", overrides=_SMALL_OVERRIDES["E1"], num_seeds=1
                )
            ],
        ),
        _grid(
            "smoke-dist",
            "E10 x 2 variants x 4 seeds, sized for multi-worker kill/steal CI runs",
            [
                GridEntry.create(
                    "E10",
                    variant="paper-vs-greedy",
                    overrides={
                        "algorithms": ("rejection-flow", "greedy"),
                        "num_jobs": 8_000,
                    },
                    num_seeds=4,
                ),
                GridEntry.create(
                    "E10",
                    variant="baselines",
                    overrides={
                        "algorithms": ("fcfs", "immediate-rejection"),
                        "num_jobs": 8_000,
                    },
                    num_seeds=4,
                ),
            ],
        ),
        _grid(
            "small",
            "all experiments E1-E10 + E12/E14-E17 at miniature scale, two seeds each",
            [
                GridEntry.create(exp_id, overrides=overrides, num_seeds=2)
                for exp_id, overrides in _SMALL_OVERRIDES.items()
            ],
        ),
        _grid(
            "medium",
            "all experiments E1-E10 + E12/E14-E17 at their default sweep sizes, three seeds each",
            [
                GridEntry.create(
                    exp_id, overrides=_MEDIUM_OVERRIDES.get(exp_id), num_seeds=3
                )
                for exp_id in _SMALL_OVERRIDES
            ],
        ),
        _grid(
            "solvers",
            "algorithm axis: every flow-time solver via repro.solve(), two seeds each",
            algorithm_axis(_SOLVER_AXIS, base_overrides={"num_jobs": 60}, num_seeds=2),
        ),
        _grid(
            "e14",
            "E14 robustness frontier: all scenarios x all streaming solvers, two seeds",
            [GridEntry.create("E14", overrides={"num_jobs": 150}, num_seeds=2)],
        ),
        _grid(
            "e16",
            "E16 partition cost: all scenarios x k in {1,2,4,8}, two seeds",
            [GridEntry.create("E16", overrides={"num_jobs": 150}, num_seeds=2)],
        ),
        _grid(
            "e17",
            "E17 adaptive regret: drift scenarios x fixed + meta policies, two seeds",
            [GridEntry.create("E17", overrides={"num_jobs": 150}, num_seeds=2)],
        ),
    )
}


def available_grids() -> dict[str, str]:
    """Mapping of grid name to its one-line description."""
    return {name: grid.description for name, grid in GRIDS.items()}


def get_grid(name: str) -> CampaignGrid:
    """Look up a grid by name."""
    grid = GRIDS.get(name)
    if grid is None:
        raise InvalidParameterError(
            f"unknown grid {name!r}; available: {sorted(GRIDS)}"
        )
    return grid
