"""Content-addressed artifact store over a pluggable blob backend.

Artifacts live at backend key ``<key[:2]>/<key>.json`` where ``key`` is the
task's content hash (see :meth:`CampaignTask.key`) — on the default
filesystem backend that is exactly the historical ``<root>/<key[:2]>/
<key>.json`` layout, byte for byte.  Because the payload is written as
canonical JSON, re-running an identical task produces a byte-identical
blob — which is what makes cache hits trustworthy: same key ⇒ same config
⇒ same (deterministic) result — and makes stores comparable across
backends: a sequential filesystem run and an N-worker sqlite run of the
same grid hold identical bytes under identical keys.

All writes are atomic on every backend (temp-file rename or a transaction,
see :mod:`~repro.campaigns.backends`), so a worker killed mid-put can never
leave a torn artifact that poisons a resumed campaign.  Lease markers used
by the distributed dispatcher live under the reserved ``leases/`` key
prefix and are excluded from :meth:`keys`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.campaigns.backends import FilesystemBackend, StoreBackend, open_backend
from repro.exceptions import InvalidParameterError
from repro.utils.serialization import canonical_json

#: Reserved backend-key prefix for the distributed dispatcher's lease
#: markers; never part of the artifact keyspace.
LEASE_PREFIX = "leases/"


def validate_artifact_key(key: str) -> str:
    """Artifact keys are non-empty lowercase hex (truncated sha256)."""
    if not key or any(ch not in "0123456789abcdef" for ch in key):
        raise InvalidParameterError(f"malformed artifact key {key!r}")
    return key


def blob_key_for(key: str) -> str:
    """Backend key of the artifact with content hash ``key``."""
    validate_artifact_key(key)
    return f"{key[:2]}/{key}.json"


class ArtifactStore:
    """Content-addressed JSON artifacts over any :class:`StoreBackend`."""

    def __init__(self, root: "str | Path | None" = None, *, backend: "StoreBackend | None" = None):
        if backend is None:
            if root is None:
                raise InvalidParameterError("ArtifactStore needs a root path or a backend")
            backend = FilesystemBackend(root)
        elif root is not None:
            raise InvalidParameterError("pass either root or backend, not both")
        self.backend = backend
        #: Filesystem root for path-based callers (``None`` on keyed backends).
        self.root = Path(backend.root) if isinstance(backend, FilesystemBackend) else None

    @classmethod
    def open(cls, spec: "str | Path | StoreBackend") -> "ArtifactStore":
        """Open a store from a spec: a path, ``file:``/``sqlite:``/``memory:``."""
        return cls(backend=open_backend(spec))

    def describe(self) -> str:
        """The spec string that re-opens this store."""
        return self.backend.describe()

    def path_for(self, key: str) -> Path:
        """Filesystem path of the artifact with content hash ``key``.

        Only meaningful on the filesystem backend; keyed backends have no
        per-artifact paths — use :meth:`load` / ``backend.get`` instead.
        """
        validate_artifact_key(key)
        if self.root is None:
            raise InvalidParameterError(
                f"store {self.describe()!r} has no filesystem paths"
            )
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an artifact for ``key`` exists."""
        return self.backend.exists(blob_key_for(key))

    def load(self, key: str) -> dict:
        """Read and decode the artifact for ``key``."""
        blob = self.backend.get(blob_key_for(key))
        if blob is None:
            raise InvalidParameterError(
                f"no artifact for key {key!r} in {self.describe()}"
            )
        return json.loads(blob.decode("utf-8"))

    def _encode(self, payload: dict) -> bytes:
        return (canonical_json(payload, indent=2) + "\n").encode("utf-8")

    def save(self, key: str, payload: dict) -> "Path | None":
        """Write ``payload`` as the artifact for ``key`` (atomic, canonical).

        Concurrent writers of one key are safe on every backend: writes are
        all-or-nothing, last writer wins, and both writers produce identical
        bytes for a given key anyway.  Returns the artifact's filesystem
        path on the filesystem backend, ``None`` on keyed backends.
        """
        self.backend.put(blob_key_for(key), self._encode(payload))
        return self.path_for(key) if self.root is not None else None

    def save_if_absent(self, key: str, payload: dict) -> bool:
        """Publish ``payload`` unless ``key`` already has an artifact.

        The distributed dispatcher's publish step: when a stolen lease and
        its original owner both finish the same task, exactly one write
        lands (they are byte-identical regardless).
        """
        return self.backend.put_if_absent(blob_key_for(key), self._encode(payload))

    def delete(self, key: str) -> bool:
        """Remove the artifact for ``key``; ``True`` iff it existed."""
        return self.backend.delete(blob_key_for(key))

    def keys(self) -> Iterator[str]:
        """All artifact keys currently in the store, sorted.

        Lease markers and transient files are excluded: this is the
        artifact keyspace only.
        """
        found = []
        for blob_key in self.backend.list_keys():
            if blob_key.startswith(LEASE_PREFIX):
                continue
            prefix, _, name = blob_key.partition("/")
            if not name or not name.endswith(".json"):
                continue
            key = name[: -len(".json")]
            if len(key) >= 8 and key[:2] == prefix:
                try:
                    validate_artifact_key(key)
                except InvalidParameterError:
                    continue
                found.append(key)
        return iter(sorted(found))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


def diff_stores(a: ArtifactStore, b: ArtifactStore) -> list[str]:
    """Byte-compare two stores' artifact keyspaces; one line per difference.

    An empty list means the stores are byte-identical artifact for
    artifact — the cross-backend analogue of ``diff -r`` between two
    filesystem stores (lease markers and transients are ignored, as
    ``diff -r`` never sees them on a cleanly finished campaign either).
    """
    keys_a, keys_b = set(a.keys()), set(b.keys())
    lines = [f"only in {a.describe()}: {key}" for key in sorted(keys_a - keys_b)]
    lines += [f"only in {b.describe()}: {key}" for key in sorted(keys_b - keys_a)]
    for key in sorted(keys_a & keys_b):
        blob = blob_key_for(key)
        if a.backend.get(blob) != b.backend.get(blob):
            lines.append(f"artifact bytes differ: {key}")
    return lines
