"""Content-addressed artifact store: one canonical-JSON file per task.

Artifacts live under ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
task's content hash (see :meth:`CampaignTask.key`).  Because the payload is
written as canonical JSON, re-running an identical task produces a
byte-identical file — which is what makes cache hits trustworthy: same key
⇒ same config ⇒ same (deterministic) result.

Writes go through a temp file + ``os.replace`` so a crashed or interrupted
campaign never leaves a half-written artifact behind; a resumed run simply
recomputes the missing keys.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator

from repro.exceptions import InvalidParameterError
from repro.utils.serialization import canonical_json


class ArtifactStore:
    """A directory of content-addressed JSON artifacts."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Filesystem path of the artifact with content hash ``key``."""
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise InvalidParameterError(f"malformed artifact key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether an artifact for ``key`` exists."""
        return self.path_for(key).is_file()

    def load(self, key: str) -> dict:
        """Read and decode the artifact for ``key``."""
        path = self.path_for(key)
        if not path.is_file():
            raise InvalidParameterError(f"no artifact for key {key!r} under {self.root}")
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def save(self, key: str, payload: dict) -> Path:
        """Write ``payload`` as the artifact for ``key`` (atomic, canonical).

        The temp name is unique per writer so concurrent campaigns sharing a
        store cannot interleave partial writes; last published file wins, and
        both writers produce identical bytes for a given key anyway.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = canonical_json(payload, indent=2) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def keys(self) -> Iterator[str]:
        """All artifact keys currently in the store, sorted."""
        if not self.root.is_dir():
            return iter(())
        found = sorted(
            path.stem
            for path in self.root.glob("??/*.json")
            if len(path.stem) >= 8
        )
        return iter(found)

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
