"""Pluggable blob backends for the campaign artifact store.

The artifact store used to *be* a directory of JSON files; distributing
campaigns across workers (and eventually hosts) needs the storage contract
separated from the storage medium.  A :class:`StoreBackend` is an
object-store-shaped keyed blob API — opaque ``str`` keys, ``bytes`` values,
list-by-prefix — with the three atomic primitives the work-stealing
dispatcher builds its lease protocol on:

* ``put`` — all-or-nothing publish (a reader never observes a torn value);
* ``put_if_absent`` — atomic create, exactly one concurrent caller wins;
* ``compare_and_put`` — atomic compare-and-set on an existing value, used
  for lease heartbeat renewal and expired-lease stealing.

Three implementations ship:

* :class:`FilesystemBackend` — keys are relative paths under a root
  directory.  This is the original store layout, byte for byte: an
  artifact-store key ``ab12…/…json`` lands at exactly the same path as
  before, so ``diff -r`` between old and new stores is empty.
* :class:`SQLiteBackend` — a single-file keyed blob table (stdlib
  ``sqlite3``), the local stand-in for an S3-style object store: opaque
  keys, conditional puts and prefix listing, safe across processes.
* :class:`MemoryBackend` — an in-process dict (optionally a named shared
  namespace), for tests and thread-based worker fleets.

``open_backend`` parses a store spec — ``file:PATH``, ``sqlite:PATH``,
``memory:NAME`` or a plain path (filesystem) — so every CLI ``--store``
flag can address any backend.
"""

from __future__ import annotations

import contextlib
import os
import sqlite3
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path

from repro.exceptions import InvalidParameterError

#: Filename suffixes the filesystem backend treats as transient plumbing
#: (in-flight temp writes, CAS lock files) rather than stored blobs.
TRANSIENT_SUFFIXES = (".tmp", ".lock")

#: A CAS lock file older than this is presumed orphaned by a killed process
#: and is broken.  Locks are normally held for well under a millisecond.
LOCK_STALE_SECONDS = 10.0


def validate_backend_key(key: str) -> str:
    """Reject keys that are empty, absolute or escape the keyspace.

    Keys are opaque to backends *except* that the filesystem backend maps
    them to relative paths, so traversal segments are rejected for every
    backend — a key must mean the same blob everywhere.
    """
    if not key or not isinstance(key, str):
        raise InvalidParameterError(f"malformed backend key {key!r}")
    if key.startswith("/") or key.endswith("/"):
        raise InvalidParameterError(f"malformed backend key {key!r}")
    parts = key.split("/")
    if any(part in ("", ".", "..") for part in parts):
        raise InvalidParameterError(f"malformed backend key {key!r}")
    return key


class StoreBackend(ABC):
    """Keyed blob storage with the atomic primitives leases need."""

    @abstractmethod
    def get(self, key: str) -> "bytes | None":
        """The blob at ``key``, or ``None`` if absent."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Publish ``data`` at ``key`` atomically (last writer wins)."""

    @abstractmethod
    def put_if_absent(self, key: str, data: bytes) -> bool:
        """Create ``key`` atomically; ``True`` iff this call created it."""

    @abstractmethod
    def compare_and_put(self, key: str, data: bytes, expected: bytes) -> bool:
        """Replace ``key``'s blob iff it currently equals ``expected``."""

    @abstractmethod
    def exists(self, key: str) -> bool:
        """Whether a blob is stored at ``key``."""

    @abstractmethod
    def list_keys(self, prefix: str = "") -> list[str]:
        """All stored keys starting with ``prefix``, sorted."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; ``True`` iff a blob was removed."""

    @abstractmethod
    def describe(self) -> str:
        """The spec string that re-opens this backend (``scheme:location``)."""

    def sweep_transients(self) -> int:
        """Remove leftover plumbing (temp/lock files); returns count removed.

        Only meaningful for backends whose atomicity is built from rename
        tricks; transactional backends have nothing to sweep.
        """
        return 0


class FilesystemBackend(StoreBackend):
    """Blobs as files under a root directory (the original store layout).

    ``put`` writes a uniquely-named temp file next to the target and
    ``os.replace``s it into place, so a killed writer can never leave a torn
    blob — at worst an orphaned ``*.tmp`` file that ``sweep_transients``
    collects and every read path ignores.  ``put_if_absent`` publishes via
    ``os.link`` (atomic create).  ``compare_and_put`` serialises
    read-compare-replace behind an ``O_EXCL`` lock file; a lock orphaned by
    a killed process is broken after :data:`LOCK_STALE_SECONDS`.
    """

    def __init__(self, root: "str | Path"):
        if not str(root):
            raise InvalidParameterError("filesystem backend needs a root path")
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root.joinpath(*validate_backend_key(key).split("/"))

    def _write_temp(self, directory: Path, data: bytes) -> str:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return tmp_name

    def get(self, key: str) -> "bytes | None":
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        tmp_name = self._write_temp(path.parent, data)
        try:
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def put_if_absent(self, key: str, data: bytes) -> bool:
        path = self._path(key)
        if path.exists():
            return False
        tmp_name = self._write_temp(path.parent, data)
        try:
            os.link(tmp_name, path)
            return True
        except FileExistsError:
            return False
        finally:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)

    @contextlib.contextmanager
    def _locked(self, path: Path, timeout: float = 10.0):
        lock = path.with_name(path.name + ".lock")
        lock.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + timeout
        while True:
            try:
                os.close(os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                break
            except FileExistsError:
                try:
                    age = time.time() - os.stat(lock).st_mtime
                except FileNotFoundError:
                    continue  # released between open() and stat(); retry
                if age > LOCK_STALE_SECONDS:
                    with contextlib.suppress(OSError):
                        os.unlink(lock)
                    continue
                if time.monotonic() > deadline:
                    raise InvalidParameterError(
                        f"timed out waiting for store lock {lock}"
                    )
                time.sleep(0.005)
        try:
            yield
        finally:
            with contextlib.suppress(OSError):
                os.unlink(lock)

    def compare_and_put(self, key: str, data: bytes, expected: bytes) -> bool:
        path = self._path(key)
        with self._locked(path):
            try:
                current = path.read_bytes()
            except FileNotFoundError:
                return False
            if current != expected:
                return False
            tmp_name = self._write_temp(path.parent, data)
            os.replace(tmp_name, path)
            return True

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list_keys(self, prefix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        keys = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(TRANSIENT_SUFFIXES):
                    continue
                rel = Path(dirpath, name).relative_to(self.root).as_posix()
                if rel.startswith(prefix):
                    keys.append(rel)
        return sorted(keys)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        self._prune_empty_dirs(path.parent)
        return True

    def _prune_empty_dirs(self, directory: Path) -> None:
        root = self.root.resolve()
        current = directory.resolve()
        while current != root and root in current.parents:
            try:
                current.rmdir()
            except OSError:
                return  # non-empty (or gone): nothing further to prune
            current = current.parent

    def sweep_transients(self) -> int:
        if not self.root.is_dir():
            return 0
        removed = 0
        doomed: list[Path] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(TRANSIENT_SUFFIXES):
                    doomed.append(Path(dirpath, name))
        for path in doomed:
            with contextlib.suppress(OSError):
                os.unlink(path)
                removed += 1
            self._prune_empty_dirs(path.parent)
        return removed

    def describe(self) -> str:
        return f"file:{self.root}"


class SQLiteBackend(StoreBackend):
    """Blobs in a single-file SQLite table: the local object-store stand-in.

    Every mutation is one transaction, so puts are inherently atomic and
    ``put_if_absent`` / ``compare_and_put`` map onto conflict-free ``INSERT
    OR IGNORE`` / guarded ``UPDATE`` statements — real cross-process CAS
    without lock files.  The backend object holds only the database path
    (picklable); each operation opens a short-lived connection, which keeps
    it safe under threads and process fleets alike.
    """

    def __init__(self, path: "str | Path"):
        if not str(path):
            raise InvalidParameterError("sqlite backend needs a database path")
        self.path = str(path)
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        with contextlib.closing(self._connect()) as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS kv "
                "(key TEXT PRIMARY KEY, value BLOB NOT NULL)"
            )
            conn.commit()

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(self.path, timeout=30.0)

    def get(self, key: str) -> "bytes | None":
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT value FROM kv WHERE key = ?", (key,)
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, key: str, data: bytes) -> None:
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            conn.execute(
                "INSERT INTO kv (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, sqlite3.Binary(data)),
            )
            conn.commit()

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO kv (key, value) VALUES (?, ?)",
                (key, sqlite3.Binary(data)),
            )
            conn.commit()
        return cursor.rowcount == 1

    def compare_and_put(self, key: str, data: bytes, expected: bytes) -> bool:
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "UPDATE kv SET value = ? WHERE key = ? AND value = ?",
                (sqlite3.Binary(data), key, sqlite3.Binary(expected)),
            )
            conn.commit()
        return cursor.rowcount == 1

    def exists(self, key: str) -> bool:
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT 1 FROM kv WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def list_keys(self, prefix: str = "") -> list[str]:
        with contextlib.closing(self._connect()) as conn:
            rows = conn.execute("SELECT key FROM kv ORDER BY key").fetchall()
        return [row[0] for row in rows if row[0].startswith(prefix)]

    def delete(self, key: str) -> bool:
        validate_backend_key(key)
        with contextlib.closing(self._connect()) as conn:
            cursor = conn.execute("DELETE FROM kv WHERE key = ?", (key,))
            conn.commit()
        return cursor.rowcount == 1

    def describe(self) -> str:
        return f"sqlite:{self.path}"


class _MemorySpace:
    """A shared dict + lock pair backing one named memory namespace."""

    def __init__(self) -> None:
        self.blobs: dict[str, bytes] = {}
        self.lock = threading.RLock()


_MEMORY_SPACES: dict[str, _MemorySpace] = {}
_MEMORY_REGISTRY_LOCK = threading.Lock()


def reset_memory_namespace(name: str) -> None:
    """Drop the named shared in-memory namespace (test isolation hook)."""
    with _MEMORY_REGISTRY_LOCK:
        _MEMORY_SPACES.pop(name, None)


class MemoryBackend(StoreBackend):
    """An in-process blob store; named instances share one namespace.

    ``MemoryBackend()`` is private to the instance; ``MemoryBackend("x")``
    (or spec ``memory:x``) joins the process-wide namespace ``x``, so
    thread-based worker fleets in tests can share one store without any
    filesystem at all.  All primitives are atomic under one re-entrant lock.
    """

    def __init__(self, name: str = ""):
        self.name = name
        if name:
            with _MEMORY_REGISTRY_LOCK:
                self._space = _MEMORY_SPACES.setdefault(name, _MemorySpace())
        else:
            self._space = _MemorySpace()

    def get(self, key: str) -> "bytes | None":
        validate_backend_key(key)
        with self._space.lock:
            return self._space.blobs.get(key)

    def put(self, key: str, data: bytes) -> None:
        validate_backend_key(key)
        with self._space.lock:
            self._space.blobs[key] = bytes(data)

    def put_if_absent(self, key: str, data: bytes) -> bool:
        validate_backend_key(key)
        with self._space.lock:
            if key in self._space.blobs:
                return False
            self._space.blobs[key] = bytes(data)
            return True

    def compare_and_put(self, key: str, data: bytes, expected: bytes) -> bool:
        validate_backend_key(key)
        with self._space.lock:
            if self._space.blobs.get(key) != expected:
                return False
            self._space.blobs[key] = bytes(data)
            return True

    def exists(self, key: str) -> bool:
        validate_backend_key(key)
        with self._space.lock:
            return key in self._space.blobs

    def list_keys(self, prefix: str = "") -> list[str]:
        with self._space.lock:
            return sorted(k for k in self._space.blobs if k.startswith(prefix))

    def delete(self, key: str) -> bool:
        validate_backend_key(key)
        with self._space.lock:
            return self._space.blobs.pop(key, None) is not None

    def describe(self) -> str:
        return f"memory:{self.name}"


#: Spec schemes understood by :func:`open_backend`.
BACKEND_SCHEMES = ("file", "sqlite", "memory")


def open_backend(spec: "str | Path | StoreBackend") -> StoreBackend:
    """Open the backend a store spec addresses.

    ``file:PATH`` and plain paths open a :class:`FilesystemBackend`,
    ``sqlite:PATH`` a :class:`SQLiteBackend`, ``memory:NAME`` a (shared)
    :class:`MemoryBackend`.  Backends pass through unchanged, so APIs can
    accept "spec or backend" uniformly.
    """
    if isinstance(spec, StoreBackend):
        return spec
    text = str(spec)
    scheme, sep, location = text.partition(":")
    if sep and scheme in BACKEND_SCHEMES:
        if scheme == "file":
            return FilesystemBackend(location)
        if scheme == "sqlite":
            return SQLiteBackend(location)
        return MemoryBackend(location)
    if not text:
        raise InvalidParameterError("empty store spec")
    return FilesystemBackend(text)
