"""Solver registry and the :func:`repro.solve` facade.

This subpackage is the algorithm-agnostic entry point to every scheduler in
the package:

* :mod:`repro.solvers.registry` — string-keyed registry of
  :class:`SolverSpec` entries with capability metadata (execution model,
  objective, rejection support, parameter schema);
* :mod:`repro.solvers.catalog` — the built-in registrations (imported lazily
  on first lookup);
* :mod:`repro.solvers.facade` — :func:`solve` (validate parameters, pick the
  engine, return a uniform :class:`SolveOutcome`) and :func:`make_policy`
  (construction half only, for callers driving an engine directly);
* :mod:`repro.solvers.outcome` — the :class:`SolveOutcome` /
  :class:`ReferenceRun` result types.
"""

from repro.solvers.registry import (
    MODELS,
    OBJECTIVES,
    ParamSpec,
    SolverSpec,
    available_algorithms,
    get_solver,
    list_algorithms,
    register_solver,
    unregister_solver,
)
from repro.solvers.outcome import ReferenceRun, SolveOutcome
from repro.solvers.facade import make_policy, outcome_from_result, solve

__all__ = [
    "MODELS",
    "OBJECTIVES",
    "ParamSpec",
    "SolverSpec",
    "ReferenceRun",
    "SolveOutcome",
    "available_algorithms",
    "get_solver",
    "list_algorithms",
    "make_policy",
    "outcome_from_result",
    "register_solver",
    "unregister_solver",
    "solve",
]
