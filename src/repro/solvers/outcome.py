"""Uniform outcome type returned by :func:`repro.solve`.

A :class:`SolveOutcome` bundles what every caller of the facade needs
regardless of which engine (or reference computation) produced it: the
objective value under the algorithm's declared objective, a per-component
breakdown, and the rejection statistics both theorems budget against.
Engine-backed runs additionally carry the full
:class:`~repro.simulation.schedule.SimulationResult` and
:class:`~repro.simulation.metrics.ResultSummary`; reference solvers leave
``result``/``summary`` as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simulation.metrics import ResultSummary
from repro.simulation.schedule import SimulationResult


@dataclass
class ReferenceRun:
    """What a ``reference``-model runner returns to the facade.

    ``breakdown`` holds named objective components (e.g. ``energy``,
    ``flow_time``); ``extras`` is free-form diagnostic payload (schedules,
    profiles, block structures) surfaced on the outcome.
    """

    label: str
    objective_value: float
    breakdown: dict[str, float] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class SolveOutcome:
    """Uniform result of ``repro.solve(instance, algorithm, **params)``.

    Attributes
    ----------
    algorithm:
        Registry id the solve was dispatched under.
    label:
        Human-readable scheduler label (e.g. ``rejection-flow-time(eps=0.5,r1+r2)``).
    model / objective:
        Capability metadata of the solver that ran.
    objective_value:
        The solver's cost under its declared objective.
    breakdown:
        Named objective components (flow time, weighted flow time, energy, ...).
    rejected_count / rejected_fraction / rejected_weight_fraction:
        Rejection statistics (zero for solvers that never reject).
    params:
        The validated parameters the solver actually ran with (defaults
        filled in).
    result / summary:
        Full simulation result and metric summary for engine-backed runs;
        ``None`` for reference solvers.
    policy:
        The policy object that ran (engine models built via a factory), for
        callers that need post-run internals such as dual variables.
    extras:
        Free-form diagnostics (policy diagnostics, reference payloads).
    """

    algorithm: str
    label: str
    model: str
    objective: str
    objective_value: float
    breakdown: dict[str, float] = field(default_factory=dict)
    rejected_count: int = 0
    rejected_fraction: float = 0.0
    rejected_weight_fraction: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)
    result: SimulationResult | None = None
    summary: ResultSummary | None = None
    policy: Any = None
    extras: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flat JSON-able view used by report tables and the CLI."""
        return {
            "algorithm": self.algorithm,
            "label": self.label,
            "model": self.model,
            "objective": self.objective,
            "objective_value": self.objective_value,
            "rejected_count": self.rejected_count,
            "rejected_fraction": self.rejected_fraction,
            "rejected_weight_fraction": self.rejected_weight_fraction,
            **{f"breakdown_{name}": value for name, value in sorted(self.breakdown.items())},
        }
