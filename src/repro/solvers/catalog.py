"""Built-in solver registrations.

Importing this module registers every scheduler the package ships — the
paper's three core algorithms, the online baselines and the
preemptive/offline references — in the solver registry.  The module is
imported lazily by :mod:`repro.solvers.registry` the first time any lookup
happens, so ``import repro`` stays cheap.

Algorithm ids are stable, kebab-case strings; changing one is an API break.
"""

from __future__ import annotations

from repro.baselines.avr import average_rate_schedule
from repro.baselines.fcfs import FCFSScheduler
from repro.baselines.greedy import GreedyDispatchScheduler
from repro.baselines.hdf import HighestDensityFirstScheduler, NoRejectionEnergyFlowScheduler
from repro.baselines.immediate_rejection import ImmediateRejectionScheduler
from repro.baselines.offline import (
    brute_force_optimal_energy,
    brute_force_optimal_flow_time,
    offline_list_schedule,
)
from repro.baselines.speed_augmentation import run_with_speed_augmentation
from repro.baselines.srpt import srpt_unrelated_lower_bound
from repro.baselines.yds import yds_schedule
from repro.adaptive.solver import DEFAULT_CANDIDATES, SWITCH_POLICIES, MetaSchedulingPolicy
from repro.core.energy_min import ConfigLPEnergyScheduler
from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.solvers.outcome import ReferenceRun
from repro.solvers.registry import ParamSpec, SolverSpec, register_solver

# The paper assumes epsilon in (0, 1); values >= 1 keep the permissive
# interpretation of core.rejection.check_epsilon (the rules fire more often),
# so the schema only enforces positivity — matching direct construction.
_EPSILON = ParamSpec(
    "epsilon",
    float,
    default=0.5,
    description="rejection parameter, usually in (0, 1)",
    minimum=0.0,
    minimum_exclusive=True,
)


# -- core algorithms (the paper's three theorems) --------------------------------------

register_solver(
    SolverSpec(
        algorithm_id="rejection-flow",
        model="fixed-speed",
        objective="total-flow-time",
        description="Theorem 1: flow-time minimisation with Rule 1 + Rule 2 rejections",
        supports_rejection=True,
        supports_streaming=True,
        params=(
            _EPSILON,
            ParamSpec("enable_rule1", bool, default=True,
                      description="reject the running job after ceil(1/eps) dispatches"),
            ParamSpec("enable_rule2", bool, default=True,
                      description="evict the largest pending job every ceil(1+1/eps) dispatches"),
        ),
        factory=RejectionFlowTimeScheduler,
        tags=("core",),
    )
)

register_solver(
    SolverSpec(
        algorithm_id="rejection-energy-flow",
        model="speed-scaling",
        objective="weighted-flow-time+energy",
        description="Theorem 2: weighted flow time plus energy with the weighted rejection rule",
        supports_rejection=True,
        supports_streaming=True,
        params=(
            _EPSILON,
            ParamSpec("gamma", float, default=None, allow_none=True,
                      description="speed-scaling constant (None = the paper's value)",
                      minimum=0.0, minimum_exclusive=True),
            ParamSpec("enable_rejection", bool, default=True,
                      description="ablation switch for the weighted rejection rule"),
        ),
        factory=RejectionEnergyFlowScheduler,
        tags=("core",),
    )
)


def _run_config_lp(instance, slot_length, speeds_per_job):
    scheduler = ConfigLPEnergyScheduler(slot_length=slot_length, speeds_per_job=speeds_per_job)
    schedule = scheduler.schedule(instance)
    return ReferenceRun(
        label=schedule.algorithm,
        objective_value=schedule.total_energy,
        breakdown={"energy": schedule.total_energy},
        extras={**schedule.summary(), "marginal_cost_sum": sum(schedule.marginal_costs.values())},
    )


register_solver(
    SolverSpec(
        algorithm_id="config-lp-energy",
        model="reference",
        objective="energy",
        description="Theorem 3: config-LP primal-dual greedy for energy minimisation "
                    "with deadlines (discrete timeline, not the online engines)",
        params=(
            ParamSpec("slot_length", float, default=1.0, minimum=0.0, minimum_exclusive=True,
                      description="length of a discrete time slot"),
            ParamSpec("speeds_per_job", int, default=16, minimum=1,
                      description="candidate speeds per (job, machine) pair"),
        ),
        runner=_run_config_lp,
        tags=("core",),
    )
)


# -- online baselines (same engines as the core algorithms) ----------------------------

register_solver(
    SolverSpec(
        algorithm_id="greedy",
        model="fixed-speed",
        objective="total-flow-time",
        description="greedy marginal-increase dispatching, never rejects",
        supports_streaming=True,
        params=(
            ParamSpec("local_order", str, default="spt", choices=("spt", "fcfs"),
                      description="per-machine execution order"),
        ),
        factory=GreedyDispatchScheduler,
        tags=("baseline",),
    )
)

register_solver(
    SolverSpec(
        algorithm_id="fcfs",
        model="fixed-speed",
        objective="total-flow-time",
        description="least-loaded dispatching, first-come-first-served local order",
        supports_streaming=True,
        factory=FCFSScheduler,
        tags=("baseline",),
    )
)

register_solver(
    SolverSpec(
        algorithm_id="immediate-rejection",
        model="fixed-speed",
        objective="total-flow-time",
        description="Lemma 1 policy family: rejection decided at arrival only",
        supports_rejection=True,
        supports_streaming=True,
        params=(
            ParamSpec("epsilon", float, default=0.25, minimum=0.0,
                      description="online rejection budget (fraction of released jobs)"),
            ParamSpec("variant", str, default="largest",
                      choices=("largest", "overload", "never"),
                      description="which arrivals to spend the budget on"),
            ParamSpec("backlog_factor", float, default=4.0, minimum=0.0,
                      description="threshold multiplier of the overload variant"),
        ),
        factory=ImmediateRejectionScheduler,
        tags=("baseline",),
    )
)

# -- adaptive meta-scheduler (portfolio over the streaming solvers above) --------------

register_solver(
    SolverSpec(
        algorithm_id="meta",
        model="fixed-speed",
        objective="total-flow-time",
        description="adaptive meta-scheduler: monitors windowed load telemetry and "
                    "hot-switches between candidate streaming policies",
        supports_rejection=True,
        supports_streaming=True,
        params=(
            ParamSpec("candidates", tuple, default=DEFAULT_CANDIDATES,
                      description="candidate portfolio (registry ids); first is initial"),
            ParamSpec("window", int, default=64, minimum=2,
                      description="telemetry window (samples per sliding statistic)"),
            ParamSpec("policy", str, default="threshold", choices=SWITCH_POLICIES,
                      description="switch-policy family ('plan' disables the controller)"),
            ParamSpec("cooldown", int, default=32, minimum=1,
                      description="minimum arrivals between switches (hysteresis)"),
            ParamSpec("margin", float, default=0.1, minimum=0.0,
                      description="bandit relative-improvement margin"),
            ParamSpec("epsilon", float, default=0.25, minimum=0.0,
                      minimum_exclusive=True, maximum=1.0,
                      description="rejection budget forwarded to every candidate "
                                  "that takes an epsilon"),
            ParamSpec("plan", tuple, default=(),
                      description="forced switches as 'INDEX:ALGORITHM' entries"),
        ),
        factory=MetaSchedulingPolicy,
        tags=("adaptive",),
    )
)


register_solver(
    SolverSpec(
        algorithm_id="speed-augmentation",
        model="fixed-speed",
        objective="total-flow-time",
        description="ESA'16 reference: (1+eps_s)-fast machines plus Rule-1 rejection "
                    "(measured on the augmented machines)",
        supports_rejection=True,
        params=(
            ParamSpec("epsilon_speed", float, default=0.2, minimum=0.0,
                      description="speed augmentation factor (machines run 1+eps_s fast)"),
            ParamSpec("epsilon_reject", float, default=0.2, minimum=0.0,
                      minimum_exclusive=True,
                      description="Rule-1 rejection budget"),
        ),
        runner=run_with_speed_augmentation,
        tags=("baseline",),
    )
)

register_solver(
    SolverSpec(
        algorithm_id="energy-flow-no-rejection",
        model="speed-scaling",
        objective="weighted-flow-time+energy",
        description="Theorem 2 scheduler with the rejection rule disabled (ablation)",
        supports_streaming=True,
        params=(
            ParamSpec("epsilon", float, default=0.5, minimum=0.0, minimum_exclusive=True,
                      description="dispatching parameter (no rejections happen)"),
            ParamSpec("gamma", float, default=None, allow_none=True,
                      description="speed-scaling constant (None = the paper's value)",
                      minimum=0.0, minimum_exclusive=True),
        ),
        factory=NoRejectionEnergyFlowScheduler,
        tags=("baseline",),
    )
)


# -- preemptive / offline references (computed outside the engines) --------------------

def _run_hdf(instance):
    hdf = HighestDensityFirstScheduler()
    result = hdf.run(instance)
    return ReferenceRun(
        label=hdf.name,
        objective_value=result.objective,
        breakdown={"weighted_flow_time": result.weighted_flow_time, "energy": result.energy},
        extras={"completions": dict(result.completions)},
    )


register_solver(
    SolverSpec(
        algorithm_id="hdf-preemptive",
        model="reference",
        objective="weighted-flow-time+energy",
        description="preemptive HDF with (total pending weight)^(1/alpha) speed scaling "
                    "(optimistic reference, infeasible in the paper's model)",
        runner=_run_hdf,
        tags=("reference",),
    )
)


def _run_srpt(instance):
    value = srpt_unrelated_lower_bound(instance)
    return ReferenceRun(
        label="srpt-pooled (reference)",
        objective_value=value,
        breakdown={"flow_time": value},
    )


register_solver(
    SolverSpec(
        algorithm_id="srpt-pooled",
        model="reference",
        objective="total-flow-time",
        description="pooled-machine preemptive SRPT flow-time reference",
        runner=_run_srpt,
        tags=("reference",),
    )
)


def _run_avr(instance):
    schedule = average_rate_schedule(instance)
    return ReferenceRun(
        label="avr (reference)",
        objective_value=schedule.energy,
        breakdown={"energy": schedule.energy},
        extras={"assignment": dict(schedule.assignment)},
    )


register_solver(
    SolverSpec(
        algorithm_id="avr",
        model="reference",
        objective="energy",
        description="Average Rate (Yao-Demers-Shenker) preemptive energy reference",
        runner=_run_avr,
        tags=("reference",),
    )
)


def _run_yds(instance):
    schedule = yds_schedule(instance=instance)
    return ReferenceRun(
        label="yds (reference)",
        objective_value=schedule.energy,
        breakdown={"energy": schedule.energy},
        extras={"max_speed": schedule.max_speed, "blocks": len(schedule.blocks)},
    )


register_solver(
    SolverSpec(
        algorithm_id="yds",
        model="reference",
        objective="energy",
        description="optimal preemptive single-machine energy schedule (certified lower bound)",
        runner=_run_yds,
        tags=("reference",),
    )
)


def _run_offline_list(instance, orderings):
    value = offline_list_schedule(instance, orderings=orderings)
    return ReferenceRun(
        label="offline-list (reference)",
        objective_value=value,
        breakdown={"flow_time": value},
    )


register_solver(
    SolverSpec(
        algorithm_id="offline-list",
        model="reference",
        objective="total-flow-time",
        description="clairvoyant list-scheduling heuristic (feasible upper bound on OPT)",
        params=(
            ParamSpec("orderings", tuple, default=("spt", "release"),
                      description="candidate job orderings to try"),
        ),
        runner=_run_offline_list,
        tags=("reference",),
    )
)


def _run_brute_force_flow(instance, max_jobs):
    value = brute_force_optimal_flow_time(instance, max_jobs=max_jobs)
    return ReferenceRun(
        label="brute-force-flow (exact)",
        objective_value=value,
        breakdown={"flow_time": value},
    )


register_solver(
    SolverSpec(
        algorithm_id="brute-force-flow",
        model="reference",
        objective="total-flow-time",
        description="exact minimum total flow time by exhaustive search (tiny instances)",
        params=(
            ParamSpec("max_jobs", int, default=8, minimum=1,
                      description="refuse instances larger than this"),
        ),
        runner=_run_brute_force_flow,
        tags=("reference",),
    )
)


def _run_brute_force_energy(instance, slot_length, speeds_per_job, max_jobs):
    value = brute_force_optimal_energy(
        instance, slot_length=slot_length, speeds_per_job=speeds_per_job, max_jobs=max_jobs
    )
    return ReferenceRun(
        label="brute-force-energy (exact)",
        objective_value=value,
        breakdown={"energy": value},
    )


register_solver(
    SolverSpec(
        algorithm_id="brute-force-energy",
        model="reference",
        objective="energy",
        description="exact discretised minimum energy by exhaustive search (tiny instances)",
        params=(
            ParamSpec("slot_length", float, default=1.0, minimum=0.0, minimum_exclusive=True),
            ParamSpec("speeds_per_job", int, default=8, minimum=1),
            ParamSpec("max_jobs", int, default=6, minimum=1),
        ),
        runner=_run_brute_force_energy,
        tags=("reference",),
    )
)
