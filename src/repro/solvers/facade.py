"""``repro.solve()`` — one algorithm-agnostic entry point for both engines.

The facade looks an algorithm up in the solver registry, validates the
keyword parameters against its declared schema, picks the engine its model
requires (or invokes the reference runner), and returns a uniform
:class:`~repro.solvers.outcome.SolveOutcome`::

    >>> from repro import quick_instance, solve
    >>> outcome = solve(quick_instance(50, 4, seed=0), "rejection-flow", epsilon=0.5)
    >>> outcome.objective, round(outcome.rejected_fraction, 2) <= 1.0
    ('total-flow-time', True)

:func:`make_policy` exposes the construction half on its own for callers that
drive an engine directly (experiments that reuse one engine across many
policies) but still want registry-validated parameters.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import InvalidParameterError, SolverModelError
from repro.simulation.engine import FlowTimeEngine, FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.metrics import summarize
from repro.simulation.schedule import SimulationResult
from repro.simulation.speed_engine import SpeedScalingEngine, SpeedScalingPolicy
from repro.solvers.outcome import ReferenceRun, SolveOutcome
from repro.solvers.registry import SolverSpec, get_solver

_POLICY_BASES = {
    "fixed-speed": FlowTimePolicy,
    "speed-scaling": SpeedScalingPolicy,
}

_ENGINES = {
    "fixed-speed": FlowTimeEngine,
    "speed-scaling": SpeedScalingEngine,
}


def make_policy(algorithm: str, **params: Any):
    """Build the policy object for an engine-model algorithm.

    Parameters are validated against the registry schema exactly as in
    :func:`solve`; the returned policy can be handed to the matching engine
    (``spec.model`` names it) any number of times.
    """
    spec = get_solver(algorithm)
    if spec.factory is None:
        raise InvalidParameterError(
            f"algorithm {algorithm!r} is not policy-based "
            f"(model {spec.model!r}); run it through repro.solve()"
        )
    validated = spec.validate_params(params)
    return _build_policy(spec, validated)


def _build_policy(spec: SolverSpec, validated: dict[str, Any]):
    policy = spec.factory(**validated)
    base = _POLICY_BASES[spec.model]
    if not isinstance(policy, base):
        raise SolverModelError(
            f"algorithm {spec.algorithm_id!r} declares model {spec.model!r} but its "
            f"factory produced {type(policy).__name__}, which is not a {base.__name__}"
        )
    return policy


def solve(
    instance: Instance,
    algorithm: str = "rejection-flow",
    *,
    model: str | None = None,
    dispatch: str | None = None,
    **params: Any,
) -> SolveOutcome:
    """Run ``algorithm`` on ``instance`` and return a uniform outcome.

    Parameters
    ----------
    instance:
        The instance to schedule.
    algorithm:
        Registry id (see :func:`repro.list_algorithms` or
        ``repro solve --list-algorithms``).
    model:
        Optional assertion of the expected execution model
        (``fixed-speed`` / ``speed-scaling`` / ``reference``); a mismatch with
        the algorithm's declared model raises :class:`SolverModelError`
        instead of silently running under a different cost model.
    dispatch:
        Engine dispatch mode override (``indexed`` / ``scan`` /
        ``vectorized``); defaults to the engine's environment-controlled
        default (``REPRO_DISPATCH``).  All modes produce byte-identical
        outcomes.  Only meaningful for policy-based engine algorithms —
        reference solvers and runner-backed algorithms build their own
        execution and reject an explicit override.
    params:
        Algorithm parameters, validated against the registry schema (unknown
        names, wrong types and out-of-range values raise
        :class:`~repro.exceptions.InvalidParameterError` before anything runs).
    """
    spec = get_solver(algorithm)
    if model is not None and model != spec.model:
        raise SolverModelError(
            f"algorithm {algorithm!r} runs under model {spec.model!r}, "
            f"not the requested {model!r}"
        )
    validated = spec.validate_params(params)

    if dispatch is not None and (spec.model == "reference" or spec.runner is not None):
        raise InvalidParameterError(
            f"algorithm {algorithm!r} does not run through a dispatchable engine; "
            "the dispatch override only applies to policy-based engine algorithms"
        )

    if spec.model == "reference":
        ref = spec.runner(instance, **validated)
        if not isinstance(ref, ReferenceRun):
            raise SolverModelError(
                f"reference algorithm {algorithm!r} returned {type(ref).__name__}; "
                "reference runners must return a ReferenceRun"
            )
        return SolveOutcome(
            algorithm=spec.algorithm_id,
            label=ref.label,
            model=spec.model,
            objective=spec.objective,
            objective_value=ref.objective_value,
            breakdown=dict(ref.breakdown),
            params=validated,
            extras=dict(ref.extras),
        )

    policy = None
    if spec.runner is not None:
        result = spec.runner(instance, **validated)
        if not isinstance(result, SimulationResult):
            raise SolverModelError(
                f"algorithm {algorithm!r} (model {spec.model!r}) returned "
                f"{type(result).__name__}; engine-model runners must return a SimulationResult"
            )
    else:
        policy = _build_policy(spec, validated)
        result = _ENGINES[spec.model](instance, dispatch=dispatch).run(policy)

    return outcome_from_result(spec, validated, result, policy=policy)


def outcome_from_result(
    spec: SolverSpec,
    validated: dict[str, Any],
    result: SimulationResult,
    policy: Any = None,
) -> SolveOutcome:
    """Build the uniform :class:`SolveOutcome` from an engine run.

    The shared back half of :func:`solve` for engine-model solvers — also
    used by :meth:`repro.service.session.SchedulerSession.finalize`, so a
    finalized session reports the exact objective breakdown the batch facade
    would.
    """
    summary = summarize(result)
    objective_value = {
        "total-flow-time": summary.total_flow_time,
        "weighted-flow-time+energy": summary.flow_plus_energy,
        "energy": summary.total_energy,
    }[spec.objective]
    extras: dict[str, Any] = dict(result.extras)
    if policy is not None and hasattr(policy, "diagnostics"):
        extras.update(policy.diagnostics())
    return SolveOutcome(
        algorithm=spec.algorithm_id,
        label=result.algorithm,
        model=spec.model,
        objective=spec.objective,
        objective_value=objective_value,
        breakdown={
            "flow_time": summary.total_flow_time,
            "weighted_flow_time": summary.total_weighted_flow_time,
            "energy": summary.total_energy,
            "flow_plus_energy": summary.flow_plus_energy,
        },
        rejected_count=summary.rejected_count,
        rejected_fraction=summary.rejected_fraction,
        rejected_weight_fraction=summary.rejected_weight_fraction,
        params=validated,
        result=result,
        summary=summary,
        policy=policy,
        extras=extras,
    )
