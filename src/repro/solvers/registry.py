"""String-keyed solver registry with capability metadata.

Every scheduler shipped by the package — the paper's core algorithms, the
online baselines and the preemptive/offline references — registers here under
a stable algorithm id together with:

* the execution ``model`` it runs under (``fixed-speed`` machines on the
  :class:`~repro.simulation.engine.FlowTimeEngine`, ``speed-scaling`` on the
  :class:`~repro.simulation.speed_engine.SpeedScalingEngine`, or
  ``reference`` for solvers computed combinatorially outside the engines);
* the ``objective`` it optimises;
* whether it may reject jobs (``supports_rejection``);
* whether it can run as a streaming :class:`~repro.service.session.SchedulerSession`
  (``supports_streaming``: policy-based engine solvers whose decisions depend
  only on released jobs — reference solvers and instance-preprocessing
  runners cannot stream);
* a declarative parameter schema (:class:`ParamSpec`) used by
  :func:`repro.solve` to validate and default keyword parameters before any
  engine is touched.

The registry is the single construction path for schedulers: experiments,
campaigns and the CLI look algorithms up by id instead of importing classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.exceptions import InvalidParameterError, UnknownAlgorithmError

#: Execution models a solver can declare.
MODELS = ("fixed-speed", "speed-scaling", "reference")

#: Objective keys understood by the facade (see ``repro.solvers.facade``).
OBJECTIVES = ("total-flow-time", "weighted-flow-time+energy", "energy")


@dataclass(frozen=True)
class ParamSpec:
    """Declarative schema of one solver parameter.

    ``type`` is the expected Python type; ``int`` values are accepted (and
    coerced) where ``float`` is expected, and ``bool`` is *not* accepted as an
    ``int``.  ``minimum`` / ``maximum`` are exclusive when the corresponding
    ``*_exclusive`` flag is set (the common case for ``epsilon``-style
    parameters that must lie strictly inside an interval).
    """

    name: str
    type: type = float
    default: Any = None
    description: str = ""
    choices: tuple[Any, ...] | None = None
    minimum: float | None = None
    maximum: float | None = None
    minimum_exclusive: bool = False
    maximum_exclusive: bool = False
    allow_none: bool = False

    def validate(self, value: Any) -> Any:
        """Check ``value`` against the schema and return the coerced value."""
        if value is None:
            if self.allow_none:
                return None
            raise InvalidParameterError(f"parameter {self.name!r} must not be None")
        if self.type is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if self.type is bool and not isinstance(value, bool):
            raise InvalidParameterError(
                f"parameter {self.name!r} expects a bool, got {value!r}"
            )
        if self.type is int and isinstance(value, bool):
            raise InvalidParameterError(
                f"parameter {self.name!r} expects an int, got {value!r}"
            )
        if self.type is tuple:
            if isinstance(value, list):
                value = tuple(value)
            elif isinstance(value, str):
                # CLI-friendly spelling: --param orderings=spt,release
                value = tuple(part for part in value.split(",") if part)
        if not isinstance(value, self.type):
            raise InvalidParameterError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.choices is not None and value not in self.choices:
            raise InvalidParameterError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, got {value!r}"
            )
        if self.minimum is not None:
            if value < self.minimum or (self.minimum_exclusive and value == self.minimum):
                bound = ">" if self.minimum_exclusive else ">="
                raise InvalidParameterError(
                    f"parameter {self.name!r} must be {bound} {self.minimum}, got {value!r}"
                )
        if self.maximum is not None:
            if value > self.maximum or (self.maximum_exclusive and value == self.maximum):
                bound = "<" if self.maximum_exclusive else "<="
                raise InvalidParameterError(
                    f"parameter {self.name!r} must be {bound} {self.maximum}, got {value!r}"
                )
        return value


@dataclass(frozen=True)
class SolverSpec:
    """Registry entry: capability metadata plus a construction recipe.

    Exactly one of ``factory`` / ``runner`` is set:

    * ``factory(**params)`` builds a policy object for the engine implied by
      ``model`` (``fixed-speed`` → :class:`FlowTimePolicy`,
      ``speed-scaling`` → :class:`SpeedScalingPolicy`);
    * ``runner(instance, **params)`` executes the solver itself and returns a
      :class:`~repro.simulation.schedule.SimulationResult` (engine models that
      need to pre-process the instance, e.g. speed augmentation) or a
      :class:`~repro.solvers.outcome.ReferenceRun` (``reference`` model).
    """

    algorithm_id: str
    model: str
    objective: str
    description: str
    supports_rejection: bool = False
    supports_streaming: bool = False
    params: tuple[ParamSpec, ...] = ()
    factory: Callable[..., Any] | None = None
    runner: Callable[..., Any] | None = None
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise InvalidParameterError(
                f"solver {self.algorithm_id!r}: unknown model {self.model!r}; "
                f"expected one of {list(MODELS)}"
            )
        if self.objective not in OBJECTIVES:
            raise InvalidParameterError(
                f"solver {self.algorithm_id!r}: unknown objective {self.objective!r}; "
                f"expected one of {list(OBJECTIVES)}"
            )
        if (self.factory is None) == (self.runner is None):
            raise InvalidParameterError(
                f"solver {self.algorithm_id!r} must define exactly one of factory/runner"
            )
        if self.model == "reference" and self.runner is None:
            raise InvalidParameterError(
                f"reference solver {self.algorithm_id!r} must define a runner"
            )
        if self.supports_streaming and self.factory is None:
            raise InvalidParameterError(
                f"solver {self.algorithm_id!r} declares supports_streaming but has no "
                "policy factory; only policy-based engine solvers can stream"
            )

    def param_specs(self) -> dict[str, ParamSpec]:
        """Parameter schema keyed by name."""
        return {p.name: p for p in self.params}

    def validate_params(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``overrides`` against the schema and fill in defaults."""
        specs = self.param_specs()
        unknown = set(overrides) - set(specs)
        if unknown:
            raise InvalidParameterError(
                f"unknown parameter(s) for algorithm {self.algorithm_id!r}: "
                f"{sorted(unknown)}; available: {sorted(specs)}"
            )
        validated: dict[str, Any] = {}
        for name, spec in specs.items():
            value = overrides.get(name, spec.default)
            validated[name] = spec.validate(value) if name in overrides else value
        return validated

    def describe_params(self) -> str:
        """One-line ``name=default`` summary of the parameter schema."""
        return ", ".join(f"{p.name}={p.default!r}" for p in self.params) or "-"


_REGISTRY: dict[str, SolverSpec] = {}
_CATALOG_LOADED = False


def register_solver(spec: SolverSpec) -> SolverSpec:
    """Add ``spec`` to the registry (ids are unique)."""
    if spec.algorithm_id in _REGISTRY:
        raise InvalidParameterError(f"algorithm {spec.algorithm_id!r} is already registered")
    _REGISTRY[spec.algorithm_id] = spec
    return spec


def unregister_solver(algorithm_id: str) -> bool:
    """Remove a registration (used by tests for ad-hoc specs).

    Returns ``True`` when a spec was removed, ``False`` when the id was not
    registered — unknown ids are a no-op, not an error, so teardown code can
    call this unconditionally.
    """
    return _REGISTRY.pop(algorithm_id, None) is not None


def _ensure_catalog() -> None:
    """Import the built-in catalog once (registration happens on import).

    The flag is only set after a *successful* import: if the catalog import
    fails, the next lookup retries it and surfaces the real error instead of
    misreporting every algorithm as unknown against an empty registry.
    """
    global _CATALOG_LOADED
    if not _CATALOG_LOADED:
        from repro.solvers import catalog  # noqa: F401  (import registers specs)

        _CATALOG_LOADED = True


def available_algorithms() -> dict[str, SolverSpec]:
    """All registered solvers keyed by algorithm id (built-ins included)."""
    _ensure_catalog()
    return dict(_REGISTRY)


def get_solver(algorithm_id: str) -> SolverSpec:
    """Look up a solver by id; raise :class:`UnknownAlgorithmError` if absent."""
    _ensure_catalog()
    spec = _REGISTRY.get(algorithm_id)
    if spec is None:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm_id!r}; available: {sorted(_REGISTRY)}"
        )
    return spec


def list_algorithms(*, streaming: "bool | None" = None) -> list[dict[str, Any]]:
    """Stable, JSON-able capability rows for every registered solver.

    ``streaming=True`` keeps only algorithms that can run as a
    :class:`~repro.service.session.SchedulerSession` (``repro serve`` and the
    multi-session service); ``streaming=False`` keeps only batch-only ones;
    ``None`` (default) lists everything.
    """
    rows = []
    for algorithm_id in sorted(available_algorithms()):
        spec = _REGISTRY[algorithm_id]
        if streaming is not None and spec.supports_streaming != streaming:
            continue
        rows.append(
            {
                "algorithm": algorithm_id,
                "model": spec.model,
                "objective": spec.objective,
                "supports_rejection": spec.supports_rejection,
                "supports_streaming": spec.supports_streaming,
                "params": spec.describe_params(),
                "description": spec.description,
            }
        )
    return rows
