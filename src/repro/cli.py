"""Command-line interface.

Seven subcommands cover the common workflows::

    python -m repro experiments --only E1 E2 --scale small
    python -m repro simulate --jobs 200 --machines 4 --epsilon 0.5 --policy theorem1 --gantt
    python -m repro solve --algorithm rejection-flow --param epsilon=0.5 --jobs 200
    python -m repro shard-solve --scenario multi-tenant-mix --shards 4 --workers 4
    python -m repro serve --algorithm rejection-flow --machines 4 < jobs.ndjson
    python -m repro serve --listen 127.0.0.1:7077 --checkpoint-dir ckpt
    python -m repro loadgen --sessions 8 --jobs 500 --verify
    python -m repro trace generate --scenario flash-crowd --jobs 1000 --out crowd.ndjson
    python -m repro adaptive --scenario drift-ramp-heavytail --policy threshold
    python -m repro bounds --epsilon 0.25 --alpha 3
    python -m repro campaign run --grid small --workers 4
    python -m repro campaign run --grid medium --store sqlite:grid.db --worker
    python -m repro campaign diff /tmp/store-a sqlite:/tmp/store-b.db

* ``experiments`` regenerates experiment tables (same engine as the benchmark
  harness and ``examples/reproduce_experiments.py``).
* ``simulate`` generates a random workload, runs one of the flow-time policies
  and prints the summary (optionally an ASCII Gantt chart and a CSV trace).
* ``solve`` runs *any* registered algorithm through the unified solver
  registry (``--list-algorithms`` enumerates them with their capability
  metadata; ``--param name=value`` passes schema-validated parameters;
  ``--json`` emits the outcome row as canonical JSON for scripted callers).
  ``--shards K --workers N`` routes through the parallel shard-and-merge
  solver; ``--store DIR`` persists content-addressed solve artifacts.
* ``shard-solve`` is the parallel solver's own surface: partition a scenario,
  trace or generated workload across K independent streaming solvers
  (``--partition hash|tenant|round-robin``), fan them out over worker
  processes and merge the decision streams into one combined outcome.
* ``serve`` runs a streaming scheduler session: job rows in (stdin or
  ``--trace FILE``, NDJSON or CSV via ``--trace-format``), decision-event
  lines out as jobs arrive, and a final summary line when the stream ends.
  With ``--listen HOST:PORT`` it instead hosts the multi-session asyncio
  service (many named concurrent sessions, bounded-queue backpressure,
  checkpoint/recover crash recovery, live migration).
* ``loadgen`` drives N concurrent scenario streams against a service server
  (or a self-hosted loopback one) and reports throughput and decision
  latency; ``--verify`` checks every session's final summary byte-identical
  to the batch ``repro.solve`` of the same instance.
* ``trace`` works with job traces: ``inspect`` (streamed statistics),
  ``convert`` (NDJSON <-> CSV plus deterministic transforms: load scaling,
  time warping, truncation, sharding), ``generate`` (export a catalog
  scenario as a trace file) and ``scenarios`` (list the catalog).
* ``adaptive`` runs the drifting-regret evaluation (experiment E17): each
  drift scenario is solved by every fixed candidate policy and by the
  algorithm-switching ``meta`` solver, and the per-scenario verdict — does
  adaptivity beat the worst (or every) fixed policy in hindsight — is printed
  after the table (``--json`` emits the verdict summary as canonical JSON).
* ``bounds`` prints the paper's closed-form guarantees for given parameters.
* ``campaign`` runs (experiment × variant × seed) grids in parallel against a
  cached artifact store and aggregates the results (``run``/``list``/``report``).
  ``--store`` addresses any backend (a directory, ``file:PATH`` or
  ``sqlite:PATH``); ``run --worker`` joins a work-stealing fleet — start any
  number of worker processes against one shared store and they execute the
  grid cooperatively, stealing expired leases from crashed peers.
  ``diff`` byte-compares two stores across backends; ``gc`` collects lease
  and temp-file residue a killed worker can leave behind.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.traces import ascii_gantt, trace_to_csv
from repro.core.bounds import (
    energy_flow_competitive_ratio,
    energy_min_competitive_ratio,
    energy_min_lower_bound,
    flow_time_competitive_ratio,
    flow_time_rejection_budget,
)
from repro.exceptions import ReproError
from repro.experiments import available_experiments, run_experiment
from repro.lowerbounds.flow_combinatorial import best_flow_time_lower_bound
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.metrics import summarize
from repro.simulation.validation import validate_result
from repro.solvers import list_algorithms, make_policy, solve
from repro.utils.serialization import canonical_json
from repro.utils.tabulate import format_table
from repro.workloads.generators import InstanceGenerator

#: CLI policy name -> (registry algorithm id, params drawn from the CLI args).
_POLICIES = {
    "theorem1": ("rejection-flow", lambda args: {"epsilon": args.epsilon}),
    "greedy": ("greedy", lambda args: {}),
    "fcfs": ("fcfs", lambda args: {}),
    "immediate": ("immediate-rejection", lambda args: {"epsilon": args.epsilon}),
}


def _shard_source_args(sub: argparse.ArgumentParser) -> None:
    """Parallel-solve options shared by ``solve`` and ``shard-solve``."""
    sub.add_argument("--scenario", default=None, metavar="NAME",
                     help="take jobs from this catalog scenario (see `repro trace "
                          "scenarios`) instead of the random generator")
    sub.add_argument("--trace", default=None, metavar="FILE",
                     help="take jobs from this trace file (NDJSON / CSV) instead "
                          "of the random generator")
    sub.add_argument("--partition", default="hash",
                     choices=("round-robin", "hash", "tenant"),
                     help="how jobs are assigned to shards (default: hash)")
    sub.add_argument("--workers", type=int, default=1,
                     help="worker processes for the shard fan-out")
    sub.add_argument("--dispatch", default=None,
                     choices=("indexed", "scan", "vectorized"),
                     help="engine dispatch mode (default: indexed, env REPRO_DISPATCH)")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run experiments E1-E10 and print their tables"
    )
    experiments.add_argument("--only", nargs="*", default=None, help="experiment ids to run")
    experiments.add_argument("--list", action="store_true", help="list experiments and exit")

    simulate = subparsers.add_parser(
        "simulate", help="run one flow-time policy on a random workload"
    )
    simulate.add_argument("--jobs", type=int, default=200)
    simulate.add_argument("--machines", type=int, default=4)
    simulate.add_argument("--epsilon", type=float, default=0.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--policy", choices=sorted(_POLICIES), default="theorem1")
    simulate.add_argument("--size-distribution", default="pareto",
                          choices=("uniform", "exponential", "pareto", "bimodal"))
    simulate.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    simulate.add_argument("--trace", action="store_true", help="print the CSV schedule trace")

    solve_cmd = subparsers.add_parser(
        "solve", help="run any registered algorithm via the unified solver registry"
    )
    solve_cmd.add_argument(
        "--list-algorithms", action="store_true",
        help="list registered algorithms with their capability metadata and exit",
    )
    solve_cmd.add_argument(
        "--streaming", action="store_true",
        help="with --list-algorithms: only algorithms usable as streaming "
             "sessions (repro serve / the multi-session service)",
    )
    solve_cmd.add_argument("--algorithm", default="rejection-flow",
                           help="registry id (see --list-algorithms)")
    solve_cmd.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="algorithm parameter, validated against the registry schema (repeatable)",
    )
    solve_cmd.add_argument("--jobs", type=int, default=200)
    solve_cmd.add_argument("--machines", type=int, default=4)
    solve_cmd.add_argument("--seed", type=int, default=0)
    solve_cmd.add_argument("--alpha", type=float, default=3.0,
                           help="power exponent of the generated machines")
    solve_cmd.add_argument("--size-distribution", default="pareto",
                           choices=("uniform", "exponential", "pareto", "bimodal"))
    solve_cmd.add_argument(
        "--json", action="store_true",
        help="print the outcome row (SolveOutcome.as_row) as canonical JSON "
             "instead of the human-readable summary",
    )
    _shard_source_args(solve_cmd)
    solve_cmd.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="solve with K independent parallel solvers (repro.shard_solve) "
             "instead of one coordinator; the merged row replaces the outcome row",
    )
    solve_cmd.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist content-addressed solve artifacts under DIR; without "
             "--shards this runs the plain solve through the artifact-writing "
             "path (the CI shard-identity gate diffs it against --shards 1)",
    )

    shard_solve_cmd = subparsers.add_parser(
        "shard-solve",
        help="shard a job stream across K parallel solvers and merge the outcome",
    )
    shard_solve_cmd.add_argument("--algorithm", default="rejection-flow",
                                 help="streaming-capable registry id")
    shard_solve_cmd.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="algorithm parameter, validated against the registry schema (repeatable)",
    )
    shard_solve_cmd.add_argument("--jobs", type=int, default=200)
    shard_solve_cmd.add_argument("--machines", type=int, default=4)
    shard_solve_cmd.add_argument("--seed", type=int, default=0)
    shard_solve_cmd.add_argument("--alpha", type=float, default=3.0,
                                 help="power exponent of the generated machines")
    shard_solve_cmd.add_argument("--size-distribution", default="pareto",
                                 choices=("uniform", "exponential", "pareto", "bimodal"))
    _shard_source_args(shard_solve_cmd)
    shard_solve_cmd.add_argument("--shards", type=int, default=2, metavar="K",
                                 help="number of independent parallel solvers")
    shard_solve_cmd.add_argument("--store", default=None, metavar="DIR",
                                 help="content-addressed artifact store directory "
                                      "(re-runs skip already-solved shards)")
    shard_solve_cmd.add_argument(
        "--json", action="store_true",
        help="print the merged outcome row as canonical JSON (byte-identical "
             "to `solve --json` of the same workload at --shards 1)",
    )

    serve = subparsers.add_parser(
        "serve", help="stream newline-delimited job JSON through a scheduler session"
    )
    serve.add_argument("--algorithm", default="rejection-flow",
                       help="streaming-capable registry id (see solve --list-algorithms)")
    serve.add_argument("--machines", type=int, default=4,
                       help="size of the identical machine fleet")
    serve.add_argument("--alpha", type=float, default=3.0,
                       help="power exponent of the machines (speed-scaling models)")
    serve.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="algorithm parameter, validated against the registry schema (repeatable)",
    )
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="read job lines from FILE instead of stdin ('-' = stdin)")
    serve.add_argument("--trace-format", default="auto",
                       choices=("auto", "ndjson", "csv"),
                       help="trace format (auto = by file extension; stdin defaults "
                            "to ndjson)")
    serve.add_argument("--dispatch", default=None,
                       choices=("indexed", "scan", "vectorized"),
                       help="engine dispatch mode (default: indexed, env REPRO_DISPATCH)")
    serve.add_argument("--name", default=None,
                       help="session label (used for the assembled instance and result)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-decision event lines (only the final summary)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="host the multi-session asyncio service on HOST:PORT "
                            "(port 0 = ephemeral) instead of a stdio session; the "
                            "other flags become the defaults for created sessions")
    serve.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="per-session bound on submitted-but-unprocessed jobs "
                            "(backpressure; service mode)")
    serve.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                       help="checkpoint each session's op log every N operations "
                            "(service mode)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="persist checkpoints under DIR (enables --recover)")
    serve.add_argument("--recover", action="store_true",
                       help="restore sessions from --checkpoint-dir before listening")

    loadgen = subparsers.add_parser(
        "loadgen", help="drive concurrent scenario streams against the service"
    )
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="target an already-running `repro serve --listen` server "
                              "(default: self-host a loopback server for the run)")
    loadgen.add_argument("--sessions", type=int, default=4,
                         help="number of concurrent sessions (one thread + connection each)")
    loadgen.add_argument("--jobs", type=int, default=256,
                         help="jobs streamed per session")
    loadgen.add_argument("--machines", type=int, default=4)
    loadgen.add_argument("--seed", type=int, default=2018,
                         help="base seed; session i uses seed+i")
    loadgen.add_argument("--alpha", type=float, default=3.0)
    loadgen.add_argument("--algorithm", default="rejection-flow",
                         help="streaming-capable registry id")
    loadgen.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="algorithm parameter, validated against the registry schema (repeatable)",
    )
    loadgen.add_argument("--dispatch", default=None,
                         choices=("indexed", "scan", "vectorized"))
    loadgen.add_argument("--scenario", action="append", default=None, metavar="NAME",
                         help="catalog scenario to cycle across sessions "
                              "(repeatable; default: the whole catalog)")
    loadgen.add_argument("--chunk-size", type=int, default=32,
                         help="jobs per submit round-trip")
    loadgen.add_argument("--rate", type=float, default=None, metavar="JOBS_PER_S",
                         help="pace each session to this many jobs/second "
                              "(default: unthrottled)")
    loadgen.add_argument("--verify", action="store_true",
                         help="check every final summary byte-identical to the "
                              "batch repro.solve of the same instance")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as canonical JSON")

    trace = subparsers.add_parser(
        "trace", help="inspect, convert and generate job traces (NDJSON / CSV)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _format_arg(sub: argparse.ArgumentParser, flag: str = "--format") -> None:
        sub.add_argument(flag, default="auto", choices=("auto", "ndjson", "csv"),
                         help="trace format (auto = by file extension)")

    trace_inspect = trace_sub.add_parser(
        "inspect", help="stream a trace and print its aggregate statistics"
    )
    trace_inspect.add_argument("file", help="trace file to inspect")
    _format_arg(trace_inspect)
    trace_inspect.add_argument("--json", action="store_true",
                               help="print the statistics as canonical JSON")

    trace_convert = trace_sub.add_parser(
        "convert", help="convert between formats, optionally applying transforms"
    )
    trace_convert.add_argument("input", help="source trace file")
    trace_convert.add_argument("output", help="destination trace file")
    _format_arg(trace_convert, "--from-format")
    _format_arg(trace_convert, "--to-format")
    trace_convert.add_argument("--load-scale", type=float, default=None, metavar="F",
                               help="multiply every processing size by F")
    trace_convert.add_argument("--time-warp", type=float, default=None, metavar="F",
                               help="multiply every release/deadline by F "
                                    "(F < 1 raises the arrival rate)")
    trace_convert.add_argument("--max-jobs", type=int, default=None, metavar="N",
                               help="keep only the first N jobs")
    trace_convert.add_argument("--max-time", type=float, default=None, metavar="T",
                               help="drop jobs released after T")
    trace_convert.add_argument("--shard", default=None, metavar="I/K",
                               help="keep shard I of K (every K-th job starting at I; "
                                    "renumbers ids)")

    trace_generate = trace_sub.add_parser(
        "generate", help="export a catalog scenario as a trace file"
    )
    trace_generate.add_argument("--scenario", required=True,
                                help="scenario name (see `repro trace scenarios`)")
    trace_generate.add_argument("--jobs", type=int, default=1000)
    trace_generate.add_argument("--machines", type=int, default=4)
    trace_generate.add_argument("--seed", type=int, default=2018)
    trace_generate.add_argument("--out", required=True, metavar="FILE",
                                help="destination trace file")
    _format_arg(trace_generate)

    trace_sub.add_parser("scenarios", help="list the heavy-traffic scenario catalog")

    adaptive = subparsers.add_parser(
        "adaptive",
        help="evaluate the algorithm-switching meta-scheduler on drifting workloads (E17)",
    )
    adaptive.add_argument("--scenario", action="append", default=None, metavar="NAME",
                          help="drifting scenario to evaluate (repeatable; default: "
                               "the full drift catalog)")
    adaptive.add_argument("--policy", action="append", default=None,
                          choices=("threshold", "bandit"),
                          help="meta switch-policy family (repeatable; default: both)")
    adaptive.add_argument("--candidate", action="append", default=None,
                          metavar="ALGORITHM",
                          help="candidate portfolio entry, a streaming registry id "
                               "(repeatable; default: the meta solver's portfolio)")
    adaptive.add_argument("--jobs", type=int, default=300)
    adaptive.add_argument("--machines", type=int, default=4)
    adaptive.add_argument("--seed", type=int, default=2018)
    adaptive.add_argument("--window", type=int, default=64,
                          help="telemetry monitor window (samples per statistic)")
    adaptive.add_argument("--cooldown", type=int, default=32,
                          help="minimum arrivals between algorithm switches")
    adaptive.add_argument("--epsilon", type=float, default=0.25,
                          help="rejection budget shared by every policy that takes one")
    adaptive.add_argument("--ingest", default="session", choices=("session", "batch"),
                          help="stream chunks through a session or solve a batch "
                               "instance (byte-identical outcomes)")
    adaptive.add_argument("--json", action="store_true",
                          help="print the per-scenario verdict summary as canonical JSON")

    bounds = subparsers.add_parser("bounds", help="print the paper's closed-form guarantees")
    bounds.add_argument("--epsilon", type=float, default=0.5)
    bounds.add_argument("--alpha", type=float, default=3.0)

    campaign = subparsers.add_parser(
        "campaign", help="run experiment grids in parallel with a cached artifact store"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _store_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", default="campaign-artifacts",
                         help="artifact store: a directory, file:PATH or sqlite:PATH")
        sub.add_argument("--backend", choices=("file", "sqlite"), default=None,
                         help="force the backend for a plain --store path "
                              "(equivalent to prefixing the path with SCHEME:)")

    def _common_campaign_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--grid", default="small", help="grid name (see `campaign list`)")
        _store_args(sub)
        sub.add_argument("--master-seed", type=int, default=None,
                         help="master seed the per-task seeds are derived from")
        sub.add_argument("--csv", metavar="DIR", default=None,
                         help="also export the aggregated tables as CSV files into DIR")

    campaign_run = campaign_sub.add_parser(
        "run", help="run a grid, skipping tasks whose artifacts are cached"
    )
    _common_campaign_args(campaign_run)
    campaign_run.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = in-process sequential)")
    campaign_run.add_argument("--worker", action="store_true",
                              help="run as one cooperative work-stealing worker: "
                                   "any number of --worker processes sharing a "
                                   "store backend execute the grid together, "
                                   "stealing tasks from crashed peers")
    campaign_run.add_argument("--worker-id", default=None, metavar="ID",
                              help="worker identity recorded in lease markers "
                                   "(default: <hostname>-<pid>)")
    campaign_run.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                              help="with --worker: seconds before an "
                                   "unrefreshed task lease may be stolen "
                                   "(default 30)")
    campaign_run.add_argument("--quiet", action="store_true",
                              help="suppress per-task progress lines")

    campaign_list = campaign_sub.add_parser("list", help="list grids (or one grid's tasks)")
    campaign_list.add_argument("--grid", default=None, help="show the tasks of this grid")
    campaign_list.add_argument("--master-seed", type=int, default=None)

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate already-stored artifacts without running anything"
    )
    _common_campaign_args(campaign_report)

    campaign_diff = campaign_sub.add_parser(
        "diff", help="byte-compare two artifact stores (any mix of backends)"
    )
    campaign_diff.add_argument("store_a", help="first store spec (path, file: or sqlite:)")
    campaign_diff.add_argument("store_b", help="second store spec")

    campaign_gc = campaign_sub.add_parser(
        "gc", help="remove expired task leases and stale temp files from a store"
    )
    _store_args(campaign_gc)

    # ``repro bench`` is dispatched before parsing (see :func:`main`) so the
    # harness keeps its own argparse surface; this stub makes it show up in
    # ``repro --help``.
    subparsers.add_parser(
        "bench",
        help="run the benchmark harness and emit BENCH_<slug>.json artifacts",
        add_help=False,
    )

    return parser


def _cmd_experiments(args: argparse.Namespace, out) -> int:
    if args.list:
        for experiment_id, description in available_experiments().items():
            print(f"{experiment_id}: {description}", file=out)
        return 0
    ids = [e.upper() for e in (args.only or available_experiments())]
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        print(result.render(), file=out)
        print("", file=out)
    return 0


def _cmd_simulate(args: argparse.Namespace, out) -> int:
    generator = InstanceGenerator(
        num_machines=args.machines,
        size_distribution=args.size_distribution,
        seed=args.seed,
    )
    instance = generator.generate(args.jobs)
    algorithm, params_of = _POLICIES[args.policy]
    policy = make_policy(algorithm, **params_of(args))
    result = FlowTimeEngine(instance).run(policy)
    validate_result(result)
    stats = summarize(result)

    lower_bound = best_flow_time_lower_bound(instance)
    print(f"instance      : {instance.name}", file=out)
    print(f"policy        : {result.algorithm}", file=out)
    print(f"total flow    : {stats.total_flow_time:.2f}", file=out)
    print(f"rejected      : {stats.rejected_count} ({100 * stats.rejected_fraction:.1f}%)", file=out)
    print(f"ratio vs LB   : {stats.total_flow_time / lower_bound:.3f}", file=out)
    if args.policy == "theorem1":
        print(
            f"paper bound   : {flow_time_competitive_ratio(args.epsilon):.1f} "
            f"(rejecting at most {100 * flow_time_rejection_budget(args.epsilon):.0f}% of jobs)",
            file=out,
        )
    if args.gantt:
        print("", file=out)
        print(ascii_gantt(result), file=out)
    if args.trace:
        print("", file=out)
        print(trace_to_csv(result), file=out, end="")
    return 0


def _parse_param(raw: str):
    """Parse one ``NAME=VALUE`` pair; values become bool/None/int/float/str."""
    name, sep, value = raw.partition("=")
    if not sep or not name:
        raise ReproError(f"--param expects NAME=VALUE, got {raw!r}")
    lowered = value.lower()
    if lowered in ("true", "false"):
        return name, lowered == "true"
    if lowered in ("none", "null"):
        return name, None
    for cast in (int, float):
        try:
            return name, cast(value)
        except ValueError:
            continue
    return name, value


def _cmd_solve(args: argparse.Namespace, out) -> int:
    if args.list_algorithms:
        rows = list_algorithms(streaming=True if args.streaming else None)
        columns = [
            "algorithm", "model", "objective",
            "supports_rejection", "supports_streaming", "params",
        ]
        title = "== registered algorithms (repro.solve) =="
        if args.streaming:
            title = "== streaming-capable algorithms (repro serve / service) =="
        print(
            format_table(
                headers=columns,
                rows=[[row[col] for col in columns] for row in rows],
                title=title,
            ),
            file=out,
        )
        return 0
    if args.streaming:
        raise ReproError("--streaming only filters --list-algorithms output")

    if args.shards is not None or args.store is not None:
        # Parallel / artifact-writing path: --shards K runs repro.shard_solve;
        # --store alone runs the plain solve through solve_to_store (the pair
        # the CI shard-identity gate byte-diffs).
        return _cmd_shard_solve(args, out)

    params = dict(_parse_param(raw) for raw in args.param)
    source, machines, _ = _parallel_source(args)
    if isinstance(source, str):
        from repro.workloads.traces import trace_instance

        instance = trace_instance(source, machines=machines, alpha=args.alpha)
    elif isinstance(source, list):
        from repro.workloads.traces import chunks_to_instance

        instance = chunks_to_instance(
            source, machines=machines, alpha=args.alpha,
            name=f"{args.scenario}(m={args.machines},n={args.jobs})",
        )
    else:
        instance = source
    outcome = solve(instance, args.algorithm, dispatch=args.dispatch, **params)
    if outcome.result is not None:
        validate_result(outcome.result)

    if args.json:
        # Canonical JSON keeps the output byte-stable for identical runs, so
        # scripted callers can diff and cache it instead of scraping tables.
        print(canonical_json(outcome.as_row()), file=out)
        return 0

    print(f"instance      : {instance.name}", file=out)
    print(f"algorithm     : {outcome.algorithm} (model {outcome.model})", file=out)
    print(f"label         : {outcome.label}", file=out)
    shown_params = ", ".join(f"{k}={v}" for k, v in sorted(outcome.params.items())) or "-"
    print(f"params        : {shown_params}", file=out)
    print(f"objective     : {outcome.objective} = {outcome.objective_value:.3f}", file=out)
    for component, value in sorted(outcome.breakdown.items()):
        print(f"  {component:22s}: {value:.3f}", file=out)
    print(
        f"rejected      : {outcome.rejected_count} jobs "
        f"({100 * outcome.rejected_fraction:.1f}%, "
        f"{100 * outcome.rejected_weight_fraction:.1f}% of weight)",
        file=out,
    )
    return 0


def _parallel_source(args: argparse.Namespace):
    """Resolve the job source shared by ``solve`` and ``shard-solve``.

    Returns ``(source, machines, label)`` — ``source`` is a chunk list
    (scenario), a trace path (str) or an :class:`Instance` (random
    generator); ``machines`` is ``None`` for instances, which carry their
    own fleet.
    """
    if args.scenario is not None and args.trace is not None:
        raise ReproError("--scenario and --trace are mutually exclusive")
    if args.scenario is not None:
        from repro.workloads.scenarios import get_scenario

        chunks = list(
            get_scenario(args.scenario).job_chunks(
                args.jobs, args.machines, seed=args.seed
            )
        )
        label = (
            f"scenario {args.scenario!r} "
            f"(n={args.jobs}, m={args.machines}, seed={args.seed})"
        )
        return chunks, args.machines, label
    if args.trace is not None:
        return args.trace, args.machines, f"trace {args.trace}"
    generator = InstanceGenerator(
        num_machines=args.machines,
        size_distribution=args.size_distribution,
        alpha=args.alpha,
        seed=args.seed,
    )
    instance = generator.generate(args.jobs)
    return instance, None, f"instance {instance.name}"


def _cmd_shard_solve(args: argparse.Namespace, out) -> int:
    from repro.parallel import shard_solve, solve_to_store

    params = dict(_parse_param(raw) for raw in args.param)
    source, machines, label = _parallel_source(args)
    if args.shards is None:
        result = solve_to_store(
            source,
            args.algorithm,
            store=args.store,
            partition=args.partition,
            dispatch=args.dispatch,
            machines=machines,
            alpha=args.alpha,
            **params,
        )
    else:
        result = shard_solve(
            source,
            args.algorithm,
            args.shards,
            partition=args.partition,
            workers=args.workers,
            dispatch=args.dispatch,
            store=args.store,
            machines=machines,
            alpha=args.alpha,
            **params,
        )
    if args.json:
        # Same canonical-JSON row contract as `solve --json`: at --shards 1
        # the two outputs are byte-identical.
        print(canonical_json(result.row), file=out)
        return 0

    row = result.row
    print(f"source        : {label}", file=out)
    print(f"algorithm     : {row['algorithm']} (model {row['model']})", file=out)
    print(
        f"shards        : {result.num_shards} [{result.partition}], "
        f"{result.workers} worker(s)",
        file=out,
    )
    print(f"objective     : {row['objective']} = {row['objective_value']:.3f}", file=out)
    if result.num_shards > 1:
        per_shard = ", ".join(f"{value:.3f}" for value in result.shard_objectives)
        print(f"  per shard             : {per_shard}", file=out)
    for component, value in sorted(row.items()):
        if component.startswith("breakdown_"):
            print(f"  {component[len('breakdown_'):]:22s}: {value:.3f}", file=out)
    print(
        f"rejected      : {row['rejected_count']} jobs "
        f"({100 * row['rejected_fraction']:.1f}%, "
        f"{100 * row['rejected_weight_fraction']:.1f}% of weight)",
        file=out,
    )
    hits = sum(1 for hit in result.cached if hit)
    print(
        f"cache         : {hits}/{result.num_shards} shard(s) cached, merged "
        f"{'cached' if result.merged_cached else 'computed'}",
        file=out,
    )
    if result.store_root is not None:
        print(f"store         : {result.store_root} [{result.merged_key}]", file=out)
    return 0


def _parse_host_port(value: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into an address tuple."""
    host, sep, port_text = value.rpartition(":")
    if not sep:
        host, port_text = "", value
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(f"expected HOST:PORT, got {value!r}") from None
    return host or "127.0.0.1", port


def _cmd_serve(args: argparse.Namespace, out) -> int:
    from repro.service.manager import SessionManager
    from repro.service.ndjson import event_line, final_line
    from repro.workloads.traces import read_trace_jobs

    params = dict(_parse_param(raw) for raw in args.param)
    reserved = {
        "algorithm", "machines", "alpha", "dispatch", "name", "retain_events",
    } & params.keys()
    if reserved:
        raise ReproError(
            f"--param cannot set session option(s) {sorted(reserved)}; use the "
            "dedicated flags (--algorithm, --machines, --alpha, --dispatch, --name). "
            "retain_events is fixed to false for serve (events are printed once, "
            "not retained)"
        )
    defaults = {
        "algorithm": args.algorithm,
        "machines": args.machines,
        "alpha": args.alpha,
        "dispatch": args.dispatch,
        "params": params,
    }
    manager_kwargs: dict = {"defaults": defaults}
    if args.max_pending is not None:
        manager_kwargs["max_pending"] = args.max_pending
    if args.checkpoint_every is not None:
        manager_kwargs["checkpoint_every"] = args.checkpoint_every

    if args.listen is not None:
        import asyncio

        from repro.service.server import ServiceServer

        host, port = _parse_host_port(args.listen)
        if args.recover:
            if args.checkpoint_dir is None:
                raise ReproError("--recover requires --checkpoint-dir")
            manager = SessionManager.recover(args.checkpoint_dir, **manager_kwargs)
        else:
            if args.checkpoint_dir is not None:
                manager_kwargs["checkpoint_dir"] = args.checkpoint_dir
            manager = SessionManager(**manager_kwargs)
        server = ServiceServer(manager, host=host, port=port, out=out)
        return asyncio.run(server.run())

    # Stdio path: a thin single-session client of the same SessionManager the
    # network service uses, so the two share lifecycle and error semantics.
    manager = SessionManager(**manager_kwargs)
    name = args.name or "serve"
    manager.create(name)
    fmt = None if args.trace_format == "auto" else args.trace_format
    source = args.trace if args.trace and args.trace != "-" else sys.stdin
    for _, job in read_trace_jobs(source, fmt):
        manager.submit(name, [job])
        events = manager.poll(name)
        if events and not args.quiet:
            for event in events:
                print(event_line(event), file=out)
            # Flush per poll batch: with a piped stdout the stream would
            # otherwise sit in the block buffer until EOF, defeating the
            # "decisions out as jobs arrive" contract for live feeds.
            out.flush()
    row, events = manager.close(name)
    if not args.quiet:
        for event in events:
            print(event_line(event), file=out)
    print(final_line(row), file=out)
    out.flush()
    return 0


def _cmd_loadgen(args: argparse.Namespace, out) -> int:
    from repro.service.client import run_loadgen

    params = dict(_parse_param(raw) for raw in args.param)
    handle = None
    if args.connect is not None:
        host, port = _parse_host_port(args.connect)
    else:
        from repro.service.server import start_server_thread

        handle = start_server_thread()
        host, port = handle.host, handle.port
    try:
        report = run_loadgen(
            host,
            port,
            sessions=args.sessions,
            jobs=args.jobs,
            machines=args.machines,
            seed=args.seed,
            alpha=args.alpha,
            algorithm=args.algorithm,
            dispatch=args.dispatch,
            params=params,
            scenarios=args.scenario,
            chunk_size=args.chunk_size,
            rate=args.rate,
            verify=args.verify,
        )
    finally:
        if handle is not None:
            handle.stop()

    if args.json:
        print(canonical_json(report.as_dict()), file=out)
    else:
        target = args.connect or f"{host}:{port} (self-hosted)"
        print(f"server        : {target}", file=out)
        print(f"sessions      : {len(report.sessions)}", file=out)
        print(f"jobs          : {report.total_jobs} total ({args.jobs}/session)", file=out)
        print(f"decisions     : {report.total_decisions}", file=out)
        print(f"elapsed       : {report.elapsed:.3f} s", file=out)
        print(f"throughput    : {report.throughput_jobs_per_s:.1f} jobs/s", file=out)
        print(f"latency p50   : {report.latency_p50_ms:.2f} ms", file=out)
        print(f"latency p99   : {report.latency_p99_ms:.2f} ms", file=out)
        print(f"throttled     : {report.total_throttled} submits", file=out)
        if args.verify:
            print(
                f"verified      : {report.verified}/{len(report.sessions)} sessions "
                "byte-identical to batch solve",
                file=out,
            )
        columns = ["session", "scenario", "jobs", "decisions", "latency_p99_ms"]
        rows = [
            [r.as_dict()[col] for col in columns] for r in report.sessions
        ]
        print("", file=out)
        print(format_table(headers=columns, rows=rows), file=out)
    if args.verify and report.verified != len(report.sessions):
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    from repro.workloads import traces
    from repro.workloads.scenarios import available_scenarios, get_scenario

    if args.trace_command == "scenarios":
        for name, description in available_scenarios().items():
            print(f"{name}: {description}", file=out)
        return 0

    if args.trace_command == "inspect":
        fmt = None if args.format == "auto" else args.format
        stats = traces.trace_stats(traces.read_trace_chunks(args.file, fmt))
        if args.json:
            print(canonical_json(stats.as_row()), file=out)
            return 0
        for key, value in stats.as_row().items():
            print(f"{key:15s}: {value}", file=out)
        return 0

    if args.trace_command == "generate":
        scenario = get_scenario(args.scenario)
        fmt = None if args.format == "auto" else args.format
        count = traces.write_trace(
            scenario.job_chunks(args.jobs, args.machines, seed=args.seed),
            args.out,
            fmt,
        )
        print(f"wrote {count} jobs of scenario {scenario.name!r} to {args.out}", file=out)
        return 0

    # convert
    from_fmt = None if args.from_format == "auto" else args.from_format
    to_fmt = None if args.to_format == "auto" else args.to_format
    chunks = traces.read_trace_chunks(args.input, from_fmt)
    if args.load_scale is not None:
        chunks = traces.scale_load(chunks, args.load_scale)
    if args.time_warp is not None:
        chunks = traces.time_warp(chunks, args.time_warp)
    if args.max_jobs is not None or args.max_time is not None:
        chunks = traces.truncate(chunks, max_jobs=args.max_jobs, max_time=args.max_time)
    if args.shard is not None:
        index, sep, total = args.shard.partition("/")
        try:
            index, total = int(index), int(total)
        except ValueError:
            sep = ""
        if not sep:
            raise ReproError(f"--shard expects I/K (e.g. 0/4), got {args.shard!r}")
        chunks = traces.shard(chunks, total, index)
    count = traces.write_trace(chunks, args.output, to_fmt)
    print(f"wrote {count} jobs to {args.output}", file=out)
    return 0


def _campaign_tasks(args: argparse.Namespace):
    from repro.campaigns import DEFAULT_MASTER_SEED, get_grid

    master_seed = args.master_seed if args.master_seed is not None else DEFAULT_MASTER_SEED
    return get_grid(args.grid).tasks(master_seed=master_seed)


def _open_campaign_store(args: argparse.Namespace):
    """Open ``--store`` honouring an explicit ``--backend`` override."""
    from repro.campaigns import ArtifactStore

    spec = args.store
    backend = getattr(args, "backend", None)
    if backend is not None:
        scheme, sep, _ = spec.partition(":")
        if sep and scheme in ("file", "sqlite", "memory"):
            if scheme != backend:
                raise ReproError(
                    f"--backend {backend} contradicts store spec {spec!r}"
                )
        else:
            spec = f"{backend}:{spec}"
    return ArtifactStore.open(spec)


def _cmd_campaign(args: argparse.Namespace, out) -> int:
    from repro.analysis.reporting import render_report
    from repro.campaigns import (
        ArtifactStore,
        aggregate_tables,
        available_grids,
        diff_stores,
        export_csv,
        gc_store,
        run_campaign,
        summary_table,
    )
    from repro.campaigns.distributed import DEFAULT_LEASE_TTL

    if args.campaign_command == "list":
        if args.grid is None:
            for name, description in available_grids().items():
                print(f"{name}: {description}", file=out)
            return 0
        for task in _campaign_tasks(args):
            print(f"{task.label} [{task.key()}]", file=out)
        return 0

    if args.campaign_command == "diff":
        store_a = ArtifactStore.open(args.store_a)
        store_b = ArtifactStore.open(args.store_b)
        lines = diff_stores(store_a, store_b)
        for line in lines:
            print(line, file=out)
        if lines:
            print(f"stores differ: {len(lines)} difference(s)", file=out)
            return 1
        print(f"stores identical: {len(store_a)} artifact(s)", file=out)
        return 0

    if args.campaign_command == "gc":
        store = _open_campaign_store(args)
        removed = gc_store(store)
        print(
            f"gc {store.describe()}: removed {removed['leases']} lease(s), "
            f"{removed['transients']} transient file(s)",
            file=out,
        )
        return 0

    store = _open_campaign_store(args)
    tasks = _campaign_tasks(args)

    if args.campaign_command == "run":
        if args.worker and args.workers != 1:
            raise ReproError(
                "--worker runs one cooperative worker per process; "
                "start more --worker processes instead of --workers N"
            )
        if not args.worker and (args.lease_ttl is not None or args.worker_id):
            raise ReproError("--lease-ttl/--worker-id only apply with --worker")
        progress = None if args.quiet else (lambda line: print(line, file=out))
        summary = run_campaign(
            tasks,
            store,
            workers=args.workers,
            distributed=args.worker,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL,
            progress=progress,
        )
        print(summary.describe(), file=out)
        print("", file=out)
        print(summary_table(summary.outcomes).render(), file=out)
        print("", file=out)
    else:  # report
        missing = [task.label for task in tasks if not store.has(task.key())]
        if missing:
            print(
                f"error: {len(missing)} task artifact(s) missing from {args.store} "
                f"(e.g. {missing[0]}); run `repro campaign run --grid {args.grid}` first",
                file=out,
            )
            return 1

    tables = aggregate_tables(store, tasks)
    print(render_report(tables, header=f"# campaign: grid {args.grid!r}"), file=out)
    if args.csv:
        written = export_csv(tables, args.csv)
        print("", file=out)
        for path in written:
            print(f"csv: {path}", file=out)
    return 0


def _cmd_adaptive(args: argparse.Namespace, out) -> int:
    overrides: dict = {
        "num_jobs": args.jobs,
        "num_machines": args.machines,
        "seed": args.seed,
        "window": args.window,
        "cooldown": args.cooldown,
        "epsilon": args.epsilon,
        "ingest": args.ingest,
    }
    if args.scenario:
        overrides["scenarios"] = tuple(args.scenario)
    if args.policy:
        overrides["meta_policies"] = tuple(args.policy)
    if args.candidate:
        overrides["candidates"] = tuple(args.candidate)
    result = run_experiment("E17", **overrides)
    if args.json:
        print(canonical_json(result.raw["summary"]), file=out)
        return 0
    print(result.render(), file=out)
    print("", file=out)
    for entry in result.raw["summary"]:
        verdict = (
            "beats every fixed policy"
            if entry["beats_all_fixed"]
            else "beats the worst fixed policy"
            if entry["beats_worst_fixed"]
            else "does NOT beat the worst fixed policy"
        )
        print(
            f"{entry['scenario']:24s} {entry['policy']:16s}: "
            f"{entry['objective_value']:.1f} vs fixed "
            f"[best {entry['best_fixed']:.1f}, worst {entry['worst_fixed']:.1f}], "
            f"{entry['switches']} switch(es) -- {verdict}",
            file=out,
        )
    return 0


def _cmd_bounds(args: argparse.Namespace, out) -> int:
    print(f"epsilon = {args.epsilon}, alpha = {args.alpha}", file=out)
    print(
        f"Theorem 1 (flow time)         : ratio <= {flow_time_competitive_ratio(args.epsilon):.3f}, "
        f"rejections <= {flow_time_rejection_budget(args.epsilon):.3f} of the jobs",
        file=out,
    )
    print(
        f"Theorem 2 (flow time + energy): ratio <= "
        f"{energy_flow_competitive_ratio(args.epsilon, args.alpha):.3f}, "
        f"rejected weight <= {args.epsilon:.3f} of the total",
        file=out,
    )
    print(
        f"Theorem 3 (energy, deadlines) : ratio <= {energy_min_competitive_ratio(args.alpha):.3f}",
        file=out,
    )
    print(
        f"Lemma 2   (lower bound)       : ratio >= {energy_min_lower_bound(args.alpha):.6f} "
        "for every deterministic algorithm",
        file=out,
    )
    return 0


def main(argv: list[str] | None = None, out=None, err=None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`ReproError`: unknown ids, schema-rejected
    parameters, infeasible instances) print ``error: ...`` to ``err``
    (stderr by default, so redirected data output stays clean) and exit 2
    on every subcommand; only genuine bugs escape as tracebacks.
    """
    out = out or sys.stdout
    err = err or sys.stderr
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv[:1] == ["bench"]:
        from repro.benchmarking import main as bench_main

        return bench_main(raw_argv[1:], prog="repro bench", out=out, err=err)
    args = build_parser().parse_args(raw_argv)
    try:
        if args.command == "experiments":
            return _cmd_experiments(args, out)
        if args.command == "simulate":
            return _cmd_simulate(args, out)
        if args.command == "solve":
            return _cmd_solve(args, out)
        if args.command == "shard-solve":
            return _cmd_shard_solve(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "loadgen":
            return _cmd_loadgen(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "campaign":
            return _cmd_campaign(args, out)
        if args.command == "adaptive":
            return _cmd_adaptive(args, out)
        return _cmd_bounds(args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=err)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
