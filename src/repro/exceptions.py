"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError):
    """An :class:`~repro.simulation.instance.Instance` violates a structural invariant.

    Examples: a job whose size vector length differs from the number of
    machines, a non-positive processing time, a deadline earlier than the
    release date.
    """


class InvalidParameterError(ReproError):
    """An algorithm or generator received a parameter outside its domain.

    Examples: ``epsilon <= 0`` for the rejection-based schedulers, a power
    exponent ``alpha <= 1`` for the speed-scaling model, an empty speed grid
    for the energy-minimisation scheduler.
    """


class SimulationError(ReproError):
    """The event-driven engine reached an inconsistent state.

    This indicates a bug in a policy implementation (e.g. dispatching a job
    to a machine index that does not exist, starting a job that is not
    pending) rather than bad user input.
    """


class ScheduleValidationError(ReproError):
    """A produced schedule violates the non-preemptive execution model.

    Raised by :mod:`repro.simulation.validation` when a schedule overlaps two
    jobs on one machine, executes a job before its release date, preempts a
    completed job, or misses a deadline in the energy-minimisation setting.
    """


class InfeasibleInstanceError(ReproError):
    """No feasible schedule exists for the given instance.

    Used by the energy-minimisation scheduler (Section 4 of the paper) when a
    job cannot be completed within its ``[release, deadline]`` window with the
    available speed grid.
    """


class DualFeasibilityError(ReproError):
    """A dual-fitting certificate violated a dual constraint.

    The analysis of the paper (Lemma 4 and Lemma 6) guarantees feasibility of
    the constructed dual solutions; this error signals a violation beyond
    numerical tolerance, i.e. an implementation bug.
    """


class UnknownAlgorithmError(InvalidParameterError):
    """An algorithm id was not found in the solver registry.

    Raised by :func:`repro.solve` and :func:`repro.solvers.get_solver`; the
    message lists the registered algorithm ids.
    """


class SolverModelError(InvalidParameterError):
    """An algorithm was used under the wrong execution model.

    Raised when a caller pins ``model=`` in :func:`repro.solve` to a model
    the algorithm does not run under, or when a registered factory produces a
    policy that does not implement the interface of its declared model.
    """


class StreamingNotSupportedError(InvalidParameterError):
    """An algorithm cannot run as a streaming scheduler session.

    Raised by :func:`repro.open_session` for solvers without streaming
    support — reference solvers and runners that must preprocess the whole
    instance; the registry marks streaming-capable algorithms with
    ``supports_streaming`` (see ``repro solve --list-algorithms``).
    """


class TraceSchemaError(InvalidParameterError):
    """A trace row (NDJSON or CSV) violates the wire schema.

    Raised by the trace readers in :mod:`repro.workloads.traces` and the
    NDJSON helpers in :mod:`repro.service.ndjson` with the 1-based line
    number and, where attributable, the offending field — so ``repro serve``
    and ``repro trace`` report *which* row and *which* column broke instead
    of a raw traceback.  The CLI maps it (like every :class:`ReproError`)
    to exit code 2.
    """

    def __init__(self, message: str, *, lineno: "int | None" = None,
                 field: "str | None" = None):
        prefix = ""
        if lineno is not None:
            prefix += f"line {lineno}: "
        if field is not None:
            prefix += f"field {field!r}: "
        super().__init__(prefix + message)
        self.lineno = lineno
        self.field = field


class ServiceError(ReproError):
    """Base class for errors of the multi-session scheduling service.

    Covers both sides of the wire: a server rejecting a malformed or
    out-of-order control message, and a client surfacing an ``error``
    response line it received.
    """


class ServiceProtocolError(ServiceError):
    """A control-message line violates the service wire protocol.

    Raised by :func:`repro.service.protocol.parse_request` with the 1-based
    line number where attributable: unknown ``op``, missing required fields,
    an unsupported protocol version, or a payload of the wrong shape.  Bare
    job lines (no ``op`` key) are *not* protocol errors — they take the
    backward-compatible single-session path and surface schema problems as
    :class:`TraceSchemaError` like ``repro serve`` always has.
    """

    def __init__(self, message: str, *, lineno: "int | None" = None):
        prefix = f"line {lineno}: " if lineno is not None else ""
        super().__init__(prefix + message)
        self.lineno = lineno


class SessionStateError(ReproError):
    """A :class:`~repro.service.session.SchedulerSession` was used out of order.

    Examples: submitting a job with a release date earlier than an already
    submitted one, submitting to a finalized session, or snapshotting after
    ``finalize()``.
    """
