"""AVERAGE RATE (AVR) baseline for energy minimisation with deadlines.

AVR (Yao, Demers, Shenker 1995) runs every job at its *density*
``p_j / (d_j - r_j)`` spread uniformly over its feasibility window; the
machine speed at any time is the sum of the densities of the active jobs.
AVR is online, preemptive and allows simultaneous processing, so it is an
optimistic online reference for experiment E4 rather than a feasible
competitor in the paper's non-preemptive model.

For multiple machines, each arriving job is dispatched to the machine where
adding its density rectangle increases the energy the least (the same greedy
marginal-energy criterion as the Section 4 algorithm, applied to the AVR
speed profile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.simulation.instance import Instance


@dataclass
class AVRSchedule:
    """Speed profiles and energy of an AVR run."""

    instance: Instance
    assignment: dict[int, int]
    energy: float
    breakpoints: list[float]


def _interval_energy(profile: list[tuple[float, float, float]], alpha: float) -> float:
    """Energy of a piecewise-constant speed profile given as (start, end, speed)."""
    return sum((speed**alpha) * (end - start) for start, end, speed in profile if end > start)


def _profile_from_rectangles(
    rectangles: list[tuple[float, float, float]], breakpoints: list[float]
) -> list[tuple[float, float, float]]:
    """Piecewise-constant profile obtained by stacking density rectangles."""
    profile = []
    for start, end in zip(breakpoints, breakpoints[1:]):
        speed = sum(d for (r, dl, d) in rectangles if r <= start + 1e-12 and end <= dl + 1e-12)
        profile.append((start, end, speed))
    return profile


def average_rate_schedule(instance: Instance) -> AVRSchedule:
    """Run AVR with greedy marginal-energy dispatching on ``instance``."""
    if not instance.has_deadlines():
        raise InfeasibleInstanceError("AVR requires every job to carry a deadline")
    breakpoints = sorted(
        {job.release for job in instance.jobs}
        | {job.deadline for job in instance.jobs if job.deadline is not None}
    )
    if len(breakpoints) < 2:
        breakpoints = breakpoints + [breakpoints[0] + 1.0] if breakpoints else [0.0, 1.0]

    rectangles: dict[int, list[tuple[float, float, float]]] = {
        i: [] for i in range(instance.num_machines)
    }
    assignment: dict[int, int] = {}
    for job in instance.jobs:  # release order = online order
        best_machine, best_delta = None, math.inf
        for machine in job.eligible_machines():
            alpha = instance.machines[machine].alpha
            density = job.size_on(machine) / job.window()
            before = _interval_energy(
                _profile_from_rectangles(rectangles[machine], breakpoints), alpha
            )
            candidate = rectangles[machine] + [(job.release, job.deadline, density)]
            after = _interval_energy(_profile_from_rectangles(candidate, breakpoints), alpha)
            delta = after - before
            if delta < best_delta:
                best_machine, best_delta = machine, delta
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")
        density = job.size_on(best_machine) / job.window()
        rectangles[best_machine].append((job.release, job.deadline, density))
        assignment[job.id] = best_machine

    total = 0.0
    for machine, rects in rectangles.items():
        alpha = instance.machines[machine].alpha
        total += _interval_energy(_profile_from_rectangles(rects, breakpoints), alpha)
    return AVRSchedule(
        instance=instance, assignment=assignment, energy=total, breakpoints=breakpoints
    )


def average_rate_energy(instance: Instance) -> float:
    """Total energy of the AVR baseline on ``instance``."""
    return average_rate_schedule(instance).energy
