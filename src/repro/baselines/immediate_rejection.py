"""Immediate-rejection policies (the subject of Lemma 1).

Lemma 1 of the paper shows that *any* policy that must decide whether to
reject a job immediately upon its arrival — instead of being allowed to evict
a job it accepted earlier — has competitive ratio Ω(sqrt(Δ)) even on a single
machine, where Δ is the ratio of the largest to the smallest processing time.

This module implements a configurable family of such policies so experiment
E2 can plot their degradation against the paper's algorithm (which rejects
*previously accepted* jobs and stays constant-competitive).

Every variant keeps the rejection budget: at most an ``epsilon`` fraction of
the jobs seen so far may be rejected (the budget is tracked online, so the
policy is a legal ``epsilon``-rejection policy in the sense of the lemma).
"""

from __future__ import annotations

from repro.core.ordering import spt_key
from repro.exceptions import InvalidParameterError
from repro.simulation.decisions import ArrivalDecision
from repro.simulation.engine import FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.state import EngineState


class ImmediateRejectionScheduler(FlowTimePolicy):
    """Decide rejection at arrival time only; otherwise greedy SPT scheduling.

    Parameters
    ----------
    epsilon:
        Online rejection budget: the policy never lets the number of rejected
        jobs exceed ``epsilon`` times the number of released jobs.
    variant:
        Which jobs to spend the budget on:

        * ``"largest"`` — reject an arriving job when its processing time is
          large relative to the work already queued (greedy intuition: long
          jobs hurt flow time most);
        * ``"overload"`` — reject an arriving job when the queue it would join
          already exceeds a backlog threshold;
        * ``"never"`` — never reject (pure greedy), the degenerate member of
          the family.
    backlog_factor:
        Threshold multiplier used by the ``overload`` variant.
    """

    def __init__(
        self,
        epsilon: float,
        variant: str = "largest",
        backlog_factor: float = 4.0,
    ) -> None:
        if not (epsilon >= 0):
            raise InvalidParameterError(f"epsilon must be non-negative, got {epsilon}")
        if variant not in ("largest", "overload", "never"):
            raise InvalidParameterError(f"unknown variant {variant!r}")
        self.epsilon = epsilon
        self.variant = variant
        self.backlog_factor = backlog_factor
        self.name = f"immediate-rejection({variant},eps={epsilon:g})"
        self._seen = 0
        self._rejected = 0

    def reset(self, instance: Instance) -> None:
        """Reset the online budget counters."""
        self._seen = 0
        self._rejected = 0

    # -- helpers -------------------------------------------------------------------

    def _budget_available(self) -> bool:
        """``True`` when rejecting one more job keeps the fraction within epsilon."""
        return (self._rejected + 1) <= self.epsilon * self._seen

    def _best_machine(self, job: Job, state: EngineState) -> int:
        best_machine: int | None = None
        best_value = float("inf")
        for machine in job.eligible_machines():
            running = state.running(machine)
            backlog = running.remaining_work(state.time) if running is not None else 0.0
            backlog += state.pending_size_sum(machine)
            value = backlog + job.size_on(machine)
            if value < best_value:
                best_machine, best_value = machine, value
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")
        return best_machine

    def _should_reject(self, job: Job, machine: int, state: EngineState) -> bool:
        if self.variant == "never" or not self._budget_available():
            return False
        running = state.running(machine)
        backlog = running.remaining_work(state.time) if running is not None else 0.0
        backlog += state.pending_size_sum(machine)
        p = job.size_on(machine)
        if self.variant == "largest":
            # Spend the budget on jobs that are long compared to the queue
            # they would join: they delay every shorter job behind them.
            return p > max(backlog, 1e-12)
        # "overload": spend the budget when the queue is already deep.
        return backlog > self.backlog_factor * p

    # -- policy hooks --------------------------------------------------------------

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Reject-or-dispatch decided instantly, as Lemma 1 requires."""
        self._seen += 1
        machine = self._best_machine(job, state)
        if self._should_reject(job, machine, state):
            self._rejected += 1
            return ArrivalDecision.reject()
        return ArrivalDecision.dispatch(machine)

    def priority_key(self, job: Job, machine: int) -> tuple[float, float, int]:
        """Static SPT local order for the indexed engine."""
        return spt_key(job, machine)

    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Run pending jobs shortest-first (the strongest local order)."""
        chosen = state.pending_argmin(machine, self.priority_key)
        return None if chosen is None else chosen.id
