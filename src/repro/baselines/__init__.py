"""Baseline and reference schedulers the experiments compare against.

Online non-preemptive baselines (same engine as the paper's algorithm):

* :class:`~repro.baselines.greedy.GreedyDispatchScheduler` — dispatch to the
  machine with the least added flow time, SPT local order, never rejects.
* :class:`~repro.baselines.fcfs.FCFSScheduler` — earliest-release-first
  dispatching to the least-loaded machine, FCFS local order, never rejects.
* :class:`~repro.baselines.immediate_rejection.ImmediateRejectionScheduler` —
  the policy family Lemma 1 proves is Ω(sqrt(Δ))-competitive: decides
  rejection at arrival only.
* :class:`~repro.baselines.speed_augmentation.SpeedAugmentedScheduler` — the
  ESA'16-style algorithm that combines (1+eps_s)-speed machines with Rule-1
  rejection, for the rejection-vs-augmentation comparison (E6).

Preemptive / relaxed references (computed combinatorially, not on the
non-preemptive engine — they serve as optimistic references, not as feasible
competitors):

* :func:`~repro.baselines.srpt.srpt_single_machine_flow_time` and
  :func:`~repro.baselines.srpt.srpt_unrelated_lower_bound` — SRPT relaxations.
* :class:`~repro.baselines.hdf.HighestDensityFirstScheduler` — preemptive HDF
  with the standard ``(sum of fractional weights)^(1/alpha)`` speed scaling.
* :func:`~repro.baselines.avr.average_rate_schedule` — AVR (Yao-Demers-Shenker).
* :func:`~repro.baselines.yds.yds_schedule` — the optimal preemptive
  single-machine energy schedule (a certified lower bound).

Offline references:

* :mod:`repro.baselines.offline` — offline list-scheduling heuristics and an
  exact brute-force optimum for tiny instances.
"""

from repro.baselines.greedy import GreedyDispatchScheduler
from repro.baselines.fcfs import FCFSScheduler
from repro.baselines.immediate_rejection import ImmediateRejectionScheduler
from repro.baselines.speed_augmentation import SpeedAugmentedScheduler
from repro.baselines.srpt import srpt_single_machine_flow_time, srpt_unrelated_lower_bound
from repro.baselines.hdf import HighestDensityFirstScheduler, NoRejectionEnergyFlowScheduler
from repro.baselines.avr import average_rate_schedule, average_rate_energy
from repro.baselines.yds import yds_schedule, yds_energy
from repro.baselines.offline import (
    offline_list_schedule,
    brute_force_optimal_flow_time,
    brute_force_optimal_energy,
)

__all__ = [
    "GreedyDispatchScheduler",
    "FCFSScheduler",
    "ImmediateRejectionScheduler",
    "SpeedAugmentedScheduler",
    "srpt_single_machine_flow_time",
    "srpt_unrelated_lower_bound",
    "HighestDensityFirstScheduler",
    "NoRejectionEnergyFlowScheduler",
    "average_rate_schedule",
    "average_rate_energy",
    "yds_schedule",
    "yds_energy",
    "offline_list_schedule",
    "brute_force_optimal_flow_time",
    "brute_force_optimal_energy",
]
