"""Highest-Density-First references for weighted flow time plus energy.

Two baselines for experiment E3:

* :class:`NoRejectionEnergyFlowScheduler` — the paper's Section 3 algorithm
  with the rejection rule switched off.  Runs on the same non-preemptive
  engine and shows what the rejection budget buys.
* :class:`HighestDensityFirstScheduler` — the classical *preemptive* HDF
  policy with speed ``(total pending weight)^{1/alpha}`` (the algorithm
  family analysed by Anand-Garg-Kumar and Nguyen/Devanur-Huang for the
  preemptive problem).  It is simulated by a dedicated event loop because the
  non-preemptive engine cannot express preemption; it serves as an optimistic
  reference, not as a feasible competitor in the paper's model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.flow_time_energy import RejectionEnergyFlowScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance


class NoRejectionEnergyFlowScheduler(RejectionEnergyFlowScheduler):
    """The Theorem 2 scheduler with rejections disabled (ablation baseline)."""

    def __init__(self, epsilon: float = 0.5, gamma: float | None = None) -> None:
        super().__init__(epsilon=epsilon, gamma=gamma, enable_rejection=False)
        self.name = "flow+energy-no-rejection"


@dataclass
class _PendingJob:
    job_id: int
    release: float
    weight: float
    volume: float
    remaining: float
    completion: float | None = None


@dataclass
class HDFResult:
    """Output of the preemptive HDF reference simulation."""

    weighted_flow_time: float
    energy: float
    completions: dict[int, float] = field(default_factory=dict)

    @property
    def objective(self) -> float:
        """Weighted flow time plus energy."""
        return self.weighted_flow_time + self.energy


class HighestDensityFirstScheduler:
    """Preemptive HDF with standard speed scaling (reference for E3).

    Jobs are dispatched on arrival to the machine where their density is
    highest (break ties by lower current weight backlog).  Each machine always
    processes its highest-density pending job at speed
    ``(total pending weight)^{1/alpha}``, re-evaluated at every arrival and
    completion, preempting as needed.
    """

    name = "hdf-preemptive(reference)"

    def run(self, instance: Instance) -> HDFResult:
        """Simulate preemptive HDF on ``instance`` and return its objective parts."""
        alphas = {m.alpha for m in instance.machines}
        if len(alphas) != 1:
            raise InvalidParameterError("HDF reference assumes a common alpha")
        alpha = float(next(iter(alphas)))
        if alpha <= 1:
            raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")

        pending: dict[int, list[_PendingJob]] = {i: [] for i in range(instance.num_machines)}
        arrivals = list(instance.jobs)
        arrival_idx = 0
        n = len(arrivals)
        time = 0.0
        weighted_flow = 0.0
        energy = 0.0
        completions: dict[int, float] = {}

        def dispatch(job) -> int:
            best, best_value = None, -math.inf
            for machine in job.eligible_machines():
                backlog = sum(p.weight for p in pending[machine])
                value = job.density_on(machine) - 1e-3 * backlog
                if value > best_value:
                    best, best_value = machine, value
            if best is None:
                raise InvalidParameterError(f"job {job.id} cannot run on any machine")
            return best

        while arrival_idx < n or any(pending[i] for i in pending):
            active = any(pending[i] for i in pending)
            if not active:
                time = max(time, arrivals[arrival_idx].release)
            while arrival_idx < n and arrivals[arrival_idx].release <= time + 1e-12:
                job = arrivals[arrival_idx]
                machine = dispatch(job)
                pending[machine].append(
                    _PendingJob(
                        job_id=job.id,
                        release=job.release,
                        weight=job.weight,
                        volume=job.size_on(machine),
                        remaining=job.size_on(machine),
                    )
                )
                arrival_idx += 1

            next_release = arrivals[arrival_idx].release if arrival_idx < n else math.inf
            # Determine, per machine, the current speed and the running job.
            horizon = next_release
            running: dict[int, tuple[_PendingJob, float]] = {}
            for machine, queue in pending.items():
                if not queue:
                    continue
                total_weight = sum(p.weight for p in queue)
                speed = total_weight ** (1.0 / alpha)
                current = max(queue, key=lambda p: (p.weight / p.volume, -p.release, -p.job_id))
                running[machine] = (current, speed)
                horizon = min(horizon, time + current.remaining / speed)
            if not running:
                time = next_release
                continue

            dt = max(0.0, horizon - time)
            for machine, (current, speed) in running.items():
                total_weight = sum(p.weight for p in pending[machine])
                weighted_flow += total_weight * dt
                energy += speed**alpha * dt
                current.remaining -= speed * dt
                if current.remaining <= 1e-9:
                    completions[current.job_id] = horizon
                    pending[machine] = [p for p in pending[machine] if p.job_id != current.job_id]
            time = horizon

        return HDFResult(
            weighted_flow_time=weighted_flow, energy=energy, completions=completions
        )
