"""Offline references: list-scheduling heuristics and exact brute force.

The paper's competitive ratios are against the offline optimum, which is
NP-hard to compute at scale.  The experiments therefore report ratios against
two kinds of references:

* :func:`offline_list_schedule` — a clairvoyant heuristic (it sees all jobs
  up front) that produces a *feasible* non-preemptive schedule; its cost is an
  upper bound on OPT, so ``ALG / heuristic`` under-estimates the true ratio
  while ``ALG / certified-lower-bound`` over-estimates it.  Reporting both
  brackets the truth.
* :func:`brute_force_optimal_flow_time` / :func:`brute_force_optimal_energy`
  — exact optima by exhaustive search, only usable on tiny instances; the
  test-suite uses them to sanity-check both the heuristics and the bounds.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.simulation.instance import Instance
from repro.simulation.timeline import DiscreteTimeline
from repro.core.energy_min import ConfigLPEnergyScheduler


# --------------------------------------------------------------------------------------
# Offline list scheduling for total (weighted) flow time
# --------------------------------------------------------------------------------------

def _simulate_fixed_assignment(
    instance: Instance, assignment: dict[int, int], order_key
) -> float:
    """Total flow time when each machine runs its assigned jobs in the given order.

    Jobs are started as early as possible in the order induced by
    ``order_key`` (non-preemptively, respecting release dates).
    """
    total_flow = 0.0
    for machine in range(instance.num_machines):
        assigned = [job for job in instance.jobs if assignment.get(job.id) == machine]
        assigned.sort(key=lambda job: order_key(job, machine))
        speed = instance.machines[machine].speed_factor
        time = 0.0
        for job in assigned:
            start = max(time, job.release)
            completion = start + job.size_on(machine) / speed
            total_flow += completion - job.release
            time = completion
    return total_flow


def offline_list_schedule(instance: Instance, orderings: Sequence[str] = ("spt", "release")) -> float:
    """Best total flow time over a family of clairvoyant list-scheduling heuristics.

    Each heuristic assigns jobs greedily (in the given global ordering) to the
    machine where the job's completion time is smallest given the already
    assigned jobs, then runs every machine's jobs in SPT order.  The minimum
    over the orderings is returned; this is a feasible schedule, hence an
    upper bound on OPT.
    """
    if instance.num_jobs == 0:
        return 0.0
    best = math.inf
    for ordering in orderings:
        if ordering == "spt":
            global_order = sorted(instance.jobs, key=lambda j: (j.min_size(), j.release, j.id))
        elif ordering == "release":
            global_order = sorted(instance.jobs, key=lambda j: (j.release, j.min_size(), j.id))
        else:
            raise InvalidParameterError(f"unknown ordering {ordering!r}")

        machine_time = [0.0] * instance.num_machines
        assignment: dict[int, int] = {}
        for job in global_order:
            best_machine, best_completion = None, math.inf
            for machine in job.eligible_machines():
                speed = instance.machines[machine].speed_factor
                completion = max(machine_time[machine], job.release) + job.size_on(machine) / speed
                if completion < best_completion:
                    best_machine, best_completion = machine, completion
            if best_machine is None:
                raise InvalidParameterError(f"job {job.id} cannot run on any machine")
            assignment[job.id] = best_machine
            machine_time[best_machine] = best_completion

        for order_key in (
            lambda job, machine: (job.size_on(machine), job.release, job.id),
            lambda job, machine: (job.release, job.size_on(machine), job.id),
        ):
            best = min(best, _simulate_fixed_assignment(instance, assignment, order_key))
    return best


def brute_force_optimal_flow_time(instance: Instance, max_jobs: int = 8) -> float:
    """Exact minimum total flow time by exhaustive search (tiny instances only).

    Enumerates every job-to-machine assignment and every per-machine sequence;
    for a fixed sequence, starting each job as early as possible is optimal,
    so the search is exact.  Raises when the instance exceeds ``max_jobs``.
    """
    n = instance.num_jobs
    if n == 0:
        return 0.0
    if n > max_jobs:
        raise InvalidParameterError(
            f"brute force limited to {max_jobs} jobs, instance has {n}"
        )
    jobs = list(instance.jobs)
    machines = range(instance.num_machines)
    best = math.inf
    for assignment_tuple in itertools.product(machines, repeat=n):
        assignment = {job.id: machine for job, machine in zip(jobs, assignment_tuple)}
        if any(
            math.isinf(job.size_on(assignment[job.id])) for job in jobs
        ):
            continue
        total = 0.0
        feasible = True
        for machine in machines:
            assigned = [job for job in jobs if assignment[job.id] == machine]
            if not assigned:
                continue
            speed = instance.machines[machine].speed_factor
            machine_best = math.inf
            for perm in itertools.permutations(assigned):
                time = 0.0
                flow = 0.0
                for job in perm:
                    start = max(time, job.release)
                    completion = start + job.size_on(machine) / speed
                    flow += completion - job.release
                    time = completion
                machine_best = min(machine_best, flow)
            if math.isinf(machine_best):
                feasible = False
                break
            total += machine_best
        if feasible:
            best = min(best, total)
    if math.isinf(best):
        raise InfeasibleInstanceError("no feasible assignment found")
    return best


# --------------------------------------------------------------------------------------
# Offline energy minimisation (Section 4 setting)
# --------------------------------------------------------------------------------------

def brute_force_optimal_energy(
    instance: Instance,
    slot_length: float = 1.0,
    speeds_per_job: int = 8,
    max_jobs: int = 6,
) -> float:
    """Exact minimum energy over the same discrete strategy space as the greedy.

    Exhaustive depth-first search over per-job strategies with
    branch-and-bound pruning.  The strategy space (slot-aligned speeds) is the
    one :class:`~repro.core.energy_min.ConfigLPEnergyScheduler` uses, so the
    returned value is the discretised offline optimum the greedy should be
    compared against.
    """
    if instance.num_jobs > max_jobs:
        raise InvalidParameterError(
            f"brute force limited to {max_jobs} jobs, instance has {instance.num_jobs}"
        )
    scheduler = ConfigLPEnergyScheduler(slot_length=slot_length, speeds_per_job=speeds_per_job)
    timeline = DiscreteTimeline.for_instance(
        instance, slot_length=scheduler.effective_slot_length(instance)
    )
    all_strategies = []
    for job in instance.jobs:
        options = []
        for machine in job.eligible_machines():
            speeds = scheduler.candidate_speeds(job, machine, timeline)
            options.extend(timeline.feasible_strategies(job, machine, speeds))
        if not options:
            raise InfeasibleInstanceError(f"job {job.id} has no feasible strategy")
        all_strategies.append(options)

    best = math.inf

    def dfs(index: int, timeline_state: DiscreteTimeline, energy_so_far: float) -> None:
        nonlocal best
        if energy_so_far >= best:
            return
        if index == len(all_strategies):
            best = energy_so_far
            return
        for strategy in all_strategies[index]:
            delta = timeline_state.marginal_energy(
                strategy.machine, strategy.start_slot, strategy.slots, strategy.speed
            )
            if energy_so_far + delta >= best:
                continue
            timeline_state.commit(strategy)
            dfs(index + 1, timeline_state, energy_so_far + delta)
            # Undo the commit by subtracting the speed again (clipping the
            # floating-point residue so later power evaluations stay clean).
            window = timeline_state._speeds[
                strategy.machine, strategy.start_slot : strategy.end_slot
            ]
            window -= strategy.speed
            window[window < 0.0] = 0.0

    dfs(0, timeline, 0.0)
    if math.isinf(best):
        raise InfeasibleInstanceError("no feasible combination of strategies found")
    return best
