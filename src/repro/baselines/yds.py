"""YDS: the optimal preemptive single-machine energy schedule.

Yao, Demers and Shenker's algorithm computes the minimum-energy *preemptive*
speed-scaled schedule of jobs with release dates and deadlines on a single
machine with a convex power function.  Because preemption only helps, its
energy is a certified lower bound on the optimal *non-preemptive* schedule,
which is how experiment E4/E5 uses it (single-machine instances).

Algorithm: repeatedly find the maximum-intensity interval
``I = [t1, t2]`` — the interval maximising ``(sum of volumes of jobs whose
window fits inside I) / (t2 - t1)`` — run exactly those jobs at that constant
intensity inside ``I``, then remove the jobs and contract the interval out of
the time axis; repeat until no jobs remain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import InfeasibleInstanceError, InvalidParameterError
from repro.simulation.instance import Instance


@dataclass
class YDSBlock:
    """One critical interval selected by YDS: its span, speed and jobs."""

    start: float
    end: float
    speed: float
    job_ids: list[int] = field(default_factory=list)

    @property
    def length(self) -> float:
        """Length of the critical interval (in original time units)."""
        return self.end - self.start


@dataclass
class YDSSchedule:
    """The full YDS decomposition and its energy."""

    blocks: list[YDSBlock]
    alpha: float

    @property
    def energy(self) -> float:
        """Total energy ``sum speed^alpha * length`` over the critical blocks."""
        return sum((b.speed**self.alpha) * b.length for b in self.blocks)

    def max_speed(self) -> float:
        """Largest speed used (the first block's speed, by construction)."""
        return max((b.speed for b in self.blocks), default=0.0)


def yds_schedule(
    jobs: list[tuple[int, float, float, float]] | None = None,
    instance: Instance | None = None,
    alpha: float | None = None,
) -> YDSSchedule:
    """Compute the YDS decomposition.

    Either pass ``jobs`` as ``(job_id, release, deadline, volume)`` tuples plus
    ``alpha``, or pass a single-machine :class:`Instance` (volumes are taken on
    machine 0 and alpha from that machine).
    """
    if instance is not None:
        if instance.num_machines != 1:
            raise InvalidParameterError("yds_schedule accepts only single-machine instances")
        if not instance.has_deadlines():
            raise InfeasibleInstanceError("YDS requires every job to carry a deadline")
        alpha = instance.machines[0].alpha
        jobs = [(job.id, job.release, float(job.deadline), job.size_on(0)) for job in instance.jobs]
    if jobs is None or alpha is None:
        raise InvalidParameterError("provide either jobs+alpha or an instance")

    remaining = [(jid, float(r), float(d), float(p)) for jid, r, d, p in jobs]
    for jid, r, d, p in remaining:
        if d <= r:
            raise InfeasibleInstanceError(f"job {jid} has an empty window [{r}, {d}]")
        if p <= 0:
            raise InvalidParameterError(f"job {jid} has non-positive volume {p}")

    blocks: list[YDSBlock] = []
    while remaining:
        times = sorted({r for _, r, _, _ in remaining} | {d for _, _, d, _ in remaining})
        best_intensity = -1.0
        best_span: tuple[float, float] | None = None
        best_jobs: list[int] = []
        for i, t1 in enumerate(times):
            for t2 in times[i + 1 :]:
                inside = [job for job in remaining if job[1] >= t1 - 1e-12 and job[2] <= t2 + 1e-12]
                if not inside:
                    continue
                intensity = sum(job[3] for job in inside) / (t2 - t1)
                if intensity > best_intensity + 1e-12:
                    best_intensity = intensity
                    best_span = (t1, t2)
                    best_jobs = [job[0] for job in inside]
        if best_span is None:
            # No job window is fully contained in any candidate interval; this
            # cannot happen for well-formed windows.
            raise InfeasibleInstanceError("YDS could not find a critical interval")

        t1, t2 = best_span
        blocks.append(
            YDSBlock(start=t1, end=t2, speed=best_intensity, job_ids=sorted(best_jobs))
        )
        chosen = set(best_jobs)
        contracted = []
        length = t2 - t1
        for jid, r, d, p in remaining:
            if jid in chosen:
                continue
            # Contract the critical interval out of the remaining jobs' windows.
            new_r = r if r <= t1 else (t1 if r <= t2 else r - length)
            new_d = d if d <= t1 else (t1 if d <= t2 else d - length)
            if new_d <= new_r:
                new_d = new_r + 1e-9
            contracted.append((jid, new_r, new_d, p))
        remaining = contracted

    return YDSSchedule(blocks=blocks, alpha=float(alpha))


def yds_energy(instance: Instance) -> float:
    """Energy of the optimal preemptive schedule of a single-machine instance."""
    return yds_schedule(instance=instance).energy
