"""First-come-first-served baseline.

The weakest sensible online policy: dispatch each arriving job to the machine
whose queue currently holds the least total work (accounting for the running
job), and run each machine's queue in arrival order.  Used as the naive
reference point in the experiment tables.
"""

from __future__ import annotations

from repro.exceptions import InvalidParameterError
from repro.simulation.decisions import ArrivalDecision
from repro.simulation.engine import FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.state import EngineState


class FCFSScheduler(FlowTimePolicy):
    """Least-loaded dispatching with first-come-first-served local order."""

    name = "fcfs"

    def reset(self, instance: Instance) -> None:
        """No per-run state."""

    def machine_backlog(self, machine: int, state: EngineState, job: Job) -> float:
        """Total work queued on ``machine`` plus the job's own size there."""
        running = state.running(machine)
        backlog = running.remaining_work(state.time) if running is not None else 0.0
        backlog += state.pending_size_sum(machine)
        return backlog + job.size_on(machine)

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch to the machine with the smallest backlog including the new job."""
        best_machine: int | None = None
        best_value = float("inf")
        for machine in job.eligible_machines():
            value = self.machine_backlog(machine, state, job)
            if value < best_value:
                best_machine, best_value = machine, value
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")
        return ArrivalDecision.dispatch(best_machine)

    def priority_key(self, job: Job, machine: int) -> tuple[float, int]:
        """Static release order for the indexed engine."""
        return (job.release, job.id)

    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Run pending jobs in release order."""
        chosen = state.pending_argmin(machine, self.priority_key)
        return None if chosen is None else chosen.id
