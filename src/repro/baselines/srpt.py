"""Shortest-Remaining-Processing-Time relaxations.

Preemptive SRPT is optimal for total flow time on a single machine, so its
value lower-bounds the best *non-preemptive* single-machine schedule.  For
unrelated machines no such clean statement exists; we expose

* :func:`srpt_single_machine_flow_time` — exact preemptive SRPT on one
  machine (certified lower bound for single-machine instances), and
* :func:`srpt_unrelated_lower_bound` — the standard *heuristic* relaxation
  that pools the ``m`` machines into one machine of speed ``m`` and gives
  every job its best processing time.  It is a useful optimistic reference
  for the experiment tables but is **not certified**; certified bounds live
  in :mod:`repro.lowerbounds`.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.exceptions import InvalidParameterError
from repro.simulation.instance import Instance


def srpt_single_machine_flow_time(
    jobs: Sequence[tuple[float, float]], speed: float = 1.0
) -> float:
    """Total flow time of preemptive SRPT on one machine of the given speed.

    Parameters
    ----------
    jobs:
        Sequence of ``(release, processing_time)`` pairs.
    speed:
        Machine speed; remaining work decreases at this rate.
    """
    if speed <= 0:
        raise InvalidParameterError(f"speed must be positive, got {speed}")
    order = sorted((float(r), float(p)) for r, p in jobs)
    for _, p in order:
        if p <= 0:
            raise InvalidParameterError("processing times must be positive")

    total_flow = 0.0
    time = 0.0
    index = 0
    heap: list[tuple[float, int, float]] = []  # (remaining, job index, release)
    n = len(order)
    while index < n or heap:
        if not heap:
            time = max(time, order[index][0])
        # Admit everything released by the current time.
        while index < n and order[index][0] <= time + 1e-12:
            release, size = order[index]
            heapq.heappush(heap, (size, index, release))
            index += 1
        if not heap:
            continue
        remaining, job_idx, release = heapq.heappop(heap)
        next_release = order[index][0] if index < n else float("inf")
        finish = time + remaining / speed
        if finish <= next_release + 1e-12:
            total_flow += finish - release
            time = finish
        else:
            processed = (next_release - time) * speed
            heapq.heappush(heap, (remaining - processed, job_idx, release))
            time = next_release
    return total_flow


def srpt_unrelated_lower_bound(instance: Instance) -> float:
    """Heuristic pooled-machine SRPT reference for unrelated machines.

    Every job is given its best processing time ``min_i p_ij`` and all
    machines are merged into a single machine of speed ``m``.  The resulting
    preemptive SRPT value is reported as an optimistic reference point; it is
    not a certified lower bound (merging machines can help flow time), so the
    experiments label it "srpt-pooled (reference)".
    """
    m = instance.num_machines
    jobs = [(job.release, job.min_size()) for job in instance.jobs]
    if not jobs:
        return 0.0
    return srpt_single_machine_flow_time(jobs, speed=float(m))


def srpt_per_machine_assignment_bound(instance: Instance, assignment: dict[int, int]) -> float:
    """Preemptive SRPT flow time for a *given* job-to-machine assignment.

    Useful to lower-bound the cost of the non-preemptive schedule an online
    algorithm produced, holding its dispatching decisions fixed: preemptive
    SRPT per machine is optimal once the assignment is frozen.
    """
    per_machine: dict[int, list[tuple[float, float]]] = {}
    for job in instance.jobs:
        machine = assignment.get(job.id)
        if machine is None:
            continue
        per_machine.setdefault(machine, []).append((job.release, job.size_on(machine)))
    total = 0.0
    for machine, jobs in per_machine.items():
        speed = instance.machines[machine].speed_factor
        total += srpt_single_machine_flow_time(jobs, speed=speed)
    return total
