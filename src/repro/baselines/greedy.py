"""Greedy dispatch without rejection.

This is the natural rejection-free counterpart of the Theorem 1 algorithm:
jobs are dispatched to the machine that minimises the same marginal-increase
surrogate (with the ``p_ij/epsilon`` term dropped, since there is no rejection
budget to amortise against) and each machine runs its pending jobs in SPT
order.  The paper's lower bounds imply that no such algorithm can be
constant-competitive; experiments E1/E2 use it to show the gap the rejection
rules close.
"""

from __future__ import annotations

from repro.core.ordering import spt_key
from repro.exceptions import InvalidParameterError
from repro.simulation.decisions import ArrivalDecision
from repro.simulation.engine import FlowTimePolicy
from repro.simulation.instance import Instance
from repro.simulation.job import Job
from repro.simulation.state import EngineState


class GreedyDispatchScheduler(FlowTimePolicy):
    """Dispatch to the machine with the least marginal flow-time increase; never reject.

    Parameters
    ----------
    local_order:
        ``"spt"`` (default) runs pending jobs shortest-first;``"fcfs"`` runs
        them in dispatch order.  SPT is the stronger baseline and the one the
        experiments use unless stated otherwise.
    """

    def __init__(self, local_order: str = "spt") -> None:
        if local_order not in ("spt", "fcfs"):
            raise InvalidParameterError(f"unknown local order {local_order!r}")
        self.local_order = local_order
        # The SPT marginal needs preceding/succeeding order statistics; the
        # FCFS variant only needs the total backlog (an O(1) running sum).
        self.wants_prefix_stats = local_order == "spt"
        self.name = f"greedy-no-rejection({local_order})"

    def reset(self, instance: Instance) -> None:
        """No per-run state."""

    def marginal_increase(self, job: Job, machine: int, state: EngineState) -> float:
        """Estimated flow-time increase of dispatching ``job`` to ``machine``.

        The estimate is the same structural quantity the paper's ``lambda_ij``
        captures — the job's own waiting plus processing, plus the delay it
        inflicts on lower-priority pending jobs — plus the remaining work of
        the running job, which a rejection-free algorithm cannot avoid paying.
        """
        p_ij = job.size_on(machine)
        running = state.running(machine)
        backlog = running.remaining_work(state.time) if running is not None else 0.0
        if self.local_order == "spt":
            waiting, succeeding = state.pending_spt_stats(machine, job)
            return backlog + waiting + p_ij + succeeding * p_ij
        return backlog + state.pending_size_sum(machine) + p_ij

    def on_arrival(self, t: float, job: Job, state: EngineState) -> ArrivalDecision:
        """Dispatch to the machine with the smallest marginal increase."""
        best_machine: int | None = None
        best_value = float("inf")
        inf = float("inf")
        for machine, p_ij in enumerate(job.sizes):
            if p_ij == inf:
                continue
            value = self.marginal_increase(job, machine, state)
            if value < best_value:
                best_machine, best_value = machine, value
        if best_machine is None:
            raise InvalidParameterError(f"job {job.id} cannot run on any machine")
        return ArrivalDecision.dispatch(best_machine)

    def priority_key(self, job: Job, machine: int) -> tuple:
        """Static local order (SPT or release order) for the indexed engine."""
        if self.local_order == "spt":
            return spt_key(job, machine)
        return (job.release, job.id)

    def select_next(self, t: float, machine: int, state: EngineState) -> int | None:
        """Run pending jobs in the configured local order."""
        chosen = state.pending_argmin(machine, self.priority_key)
        return None if chosen is None else chosen.id
