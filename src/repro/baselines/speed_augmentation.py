"""Speed augmentation combined with rejection (the ESA'16 reference point).

The paper positions its result against Lucarelli et al. (ESA 2016, reference
[5]): an ``O(1/(eps_s * eps_r))``-competitive algorithm that needs machines
``(1 + eps_s)`` times faster than the adversary's *and* rejects an ``eps_r``
fraction of the jobs.  Experiment E6 compares "rejection only" (Theorem 1)
against "speed augmentation + rejection" on the same instances.

The implementation reuses the Theorem 1 machinery: the scheduler is the
Section 2 policy with only Rule 1 enabled (the ESA'16 algorithm rejects the
running job when too many jobs pile up behind it), and the speed augmentation
is applied by scaling the machine speeds of the instance.  The helper
:func:`run_with_speed_augmentation` wraps the two steps and reports flow
times that are *measured on the augmented machines* — exactly how the
resource-augmentation analysis accounts for them.
"""

from __future__ import annotations

from repro.core.flow_time import RejectionFlowTimeScheduler
from repro.exceptions import InvalidParameterError
from repro.simulation.engine import FlowTimeEngine
from repro.simulation.instance import Instance
from repro.simulation.schedule import SimulationResult


class SpeedAugmentedScheduler(RejectionFlowTimeScheduler):
    """Theorem 1's dispatching with Rule-1 rejection only, meant for faster machines.

    This models the ESA'16 algorithm closely enough for the qualitative
    comparison of E6: its guarantee relies on the ``(1 + eps_s)`` speed-up to
    absorb the backlog Rule 2 would otherwise have to evict.
    """

    def __init__(self, epsilon_reject: float) -> None:
        super().__init__(epsilon=epsilon_reject, enable_rule1=True, enable_rule2=False)
        self.name = f"speed-augmented(eps_r={epsilon_reject:g})"


def run_with_speed_augmentation(
    instance: Instance,
    epsilon_speed: float,
    epsilon_reject: float,
) -> SimulationResult:
    """Run the speed-augmented baseline on ``instance`` with ``(1+eps_s)``-fast machines.

    Parameters
    ----------
    instance:
        The original (unit-speed) instance.
    epsilon_speed:
        Speed augmentation; machines run ``1 + epsilon_speed`` times faster
        than the adversary's.
    epsilon_reject:
        Rejection budget of the Rule-1 style rejection.
    """
    if epsilon_speed < 0:
        raise InvalidParameterError(f"epsilon_speed must be non-negative, got {epsilon_speed}")
    augmented = instance.with_speed_factor(1.0 + epsilon_speed)
    scheduler = SpeedAugmentedScheduler(epsilon_reject=epsilon_reject)
    result = FlowTimeEngine(augmented).run(scheduler)
    result.extras.update(
        {
            "epsilon_speed": epsilon_speed,
            "epsilon_reject": epsilon_reject,
            **scheduler.diagnostics(),
        }
    )
    return result
