"""Setuptools entry point.

The canonical package metadata lives in ``pyproject.toml``; this shim is kept
for legacy editable installs (``pip install -e .`` on old pip) and mirrors
the same metadata.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Online non-preemptive scheduling on unrelated machines with rejections "
        "(SPAA 2018) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
