"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package installs in environments
without the ``wheel`` package (legacy editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Online non-preemptive scheduling on unrelated machines with rejections "
        "(SPAA 2018) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
